// Unit and property tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "des/event_queue.hpp"
#include "des/random.hpp"
#include "des/simulator.hpp"
#include "des/time.hpp"

namespace sanperf::des {
namespace {

TEST(DurationTest, ConversionRoundTrips) {
  EXPECT_EQ(Duration::millis(3).ns(), 3'000'000);
  EXPECT_EQ(Duration::micros(5).ns(), 5'000);
  EXPECT_EQ(Duration::seconds(2).ns(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(Duration::from_ms(0.025).to_ms(), 0.025);
  EXPECT_DOUBLE_EQ(Duration::from_seconds(1.5).to_seconds(), 1.5);
}

TEST(DurationTest, ArithmeticAndOrdering) {
  const auto a = Duration::millis(10);
  const auto b = Duration::millis(3);
  EXPECT_EQ((a + b).ns(), Duration::millis(13).ns());
  EXPECT_EQ((a - b).ns(), Duration::millis(7).ns());
  EXPECT_EQ((b * 4).ns(), Duration::millis(12).ns());
  EXPECT_LT(b, a);
  EXPECT_EQ(Duration::zero().ns(), 0);
}

TEST(DurationTest, FromMsRoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::from_ms(0.0000001).ns(), 0);   // 0.1 ns rounds down
  EXPECT_EQ(Duration::from_ms(0.0000006).ns(), 1);   // 0.6 ns rounds up
}

TEST(TimePointTest, ArithmeticWithDurations) {
  const auto t = TimePoint::origin() + Duration::millis(5);
  EXPECT_EQ(t.ns(), 5'000'000);
  EXPECT_EQ((t + Duration::millis(2)).ns(), 7'000'000);
  EXPECT_EQ((t - TimePoint::origin()).ns(), 5'000'000);
  EXPECT_LT(TimePoint::origin(), t);
}

TEST(TimeRenderTest, AdaptiveUnits) {
  EXPECT_EQ(Duration::nanos(12).to_string(), "12ns");
  EXPECT_NE(Duration::micros(500).to_string().find("us"), std::string::npos);
  EXPECT_NE(Duration::millis(20).to_string().find("ms"), std::string::npos);
  EXPECT_NE(Duration::seconds(20).to_string().find("s"), std::string::npos);
}

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(TimePoint::origin() + Duration::millis(2), [&] { fired.push_back(2); });
  q.push(TimePoint::origin() + Duration::millis(1), [&] { fired.push_back(1); });
  q.push(TimePoint::origin() + Duration::millis(3), [&] { fired.push_back(3); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TieBreaksByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  const auto t = TimePoint::origin() + Duration::millis(1);
  for (int i = 0; i < 10; ++i) {
    q.push(t, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(TimePoint::origin() + Duration::millis(1), [&] { fired = true; });
  EXPECT_TRUE(q.pending(id));
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.pending(id));
  EXPECT_FALSE(q.cancel(id));  // double-cancel
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelAfterPopFails) {
  EventQueue q;
  const EventId id = q.push(TimePoint::origin(), [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelledHeadDoesNotBlockNextTime) {
  EventQueue q;
  const EventId early = q.push(TimePoint::origin() + Duration::millis(1), [] {});
  q.push(TimePoint::origin() + Duration::millis(5), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), TimePoint::origin() + Duration::millis(5));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
}

// Property: against a reference model (multimap ordered by time then
// insertion sequence), a random operation sequence yields identical pop
// order. The reference tracks its own insertion counter because EventIds
// encode recycled slots, not insertion order.
TEST(EventQueueTest, PropertyMatchesReferenceModel) {
  RandomEngine rng{42};
  EventQueue q;
  std::multimap<std::pair<std::int64_t, std::uint64_t>, std::pair<EventId, int>> reference;
  std::vector<EventId> live;
  std::uint64_t seq = 0;
  int payload = 0;
  std::vector<int> fired;

  for (int step = 0; step < 3000; ++step) {
    const double u = rng.uniform01();
    if (u < 0.55 || q.empty()) {
      const auto at = TimePoint::origin() + Duration::nanos(rng.uniform_int(0, 1000));
      const int tag = payload++;
      const EventId id = q.push(at, [&fired, tag] { fired.push_back(tag); });
      reference.emplace(std::make_pair(at.ns(), seq++), std::make_pair(id, tag));
      live.push_back(id);
    } else if (u < 0.75 && !live.empty()) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const EventId id = live[idx];
      const bool cancelled = q.cancel(id);
      const auto it = std::find_if(reference.begin(), reference.end(),
                                   [id](const auto& kv) { return kv.second.first == id; });
      EXPECT_EQ(cancelled, it != reference.end());
      if (it != reference.end()) reference.erase(it);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      ASSERT_EQ(q.size(), reference.size());
      auto popped = q.pop();
      ASSERT_FALSE(reference.empty());
      popped.action();
      EXPECT_EQ(popped.id, reference.begin()->second.first);
      EXPECT_EQ(fired.back(), reference.begin()->second.second);
      reference.erase(reference.begin());
    }
  }
}

// --- Slot reuse and generation stamps ---------------------------------------

TEST(EventQueueTest, CancelledSlotIsReusedWithoutSlabGrowth) {
  EventQueue q;
  const EventId a = q.push(TimePoint::origin() + Duration::millis(1), [] {});
  ASSERT_TRUE(q.cancel(a));
  const std::size_t capacity = q.slot_capacity();
  // Steady-state churn: every push must recycle the freed slot.
  for (int i = 0; i < 100; ++i) {
    const EventId id = q.push(TimePoint::origin() + Duration::millis(1 + i), [] {});
    EXPECT_NE(id, a) << "recycled slot must carry a fresh generation";
    EXPECT_TRUE(q.cancel(id));
    EXPECT_EQ(q.slot_capacity(), capacity);
  }
}

TEST(EventQueueTest, StaleIdOnReusedSlotDoesNotCancelNewEvent) {
  EventQueue q;
  const EventId old_id = q.push(TimePoint::origin() + Duration::millis(1), [] {});
  q.pop();  // fires: the slot is released and recycled below
  bool fired = false;
  const EventId fresh = q.push(TimePoint::origin() + Duration::millis(2), [&] { fired = true; });
  // The stale handle aliases the same slot but an older generation.
  EXPECT_FALSE(q.pending(old_id));
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_TRUE(q.pending(fresh));
  q.pop().action();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, CancelAfterFireViaRecycledSlotFails) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(q.push(TimePoint::origin() + Duration::millis(i), [] {}));
  }
  while (!q.empty()) q.pop();
  // Refill: slots are recycled, every old handle must stay dead.
  for (int i = 0; i < 8; ++i) q.push(TimePoint::origin() + Duration::millis(i), [] {});
  for (const EventId id : ids) {
    EXPECT_FALSE(q.pending(id));
    EXPECT_FALSE(q.cancel(id));
  }
  EXPECT_EQ(q.size(), 8u);
}

TEST(EventQueueTest, ClearMidRunStalesAllIdsAndKeepsSlab) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(q.push(TimePoint::origin() + Duration::millis(i), [] {}));
  }
  q.pop();  // mid-run: one already fired
  const std::size_t capacity = q.slot_capacity();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.slot_capacity(), capacity);
  for (const EventId id : ids) {
    EXPECT_FALSE(q.pending(id));
    EXPECT_FALSE(q.cancel(id));
  }
  // The queue keeps working after clear, reusing the retained slab.
  std::vector<int> order;
  q.push(TimePoint::origin() + Duration::millis(2), [&] { order.push_back(2); });
  q.push(TimePoint::origin() + Duration::millis(1), [&] { order.push_back(1); });
  EXPECT_EQ(q.slot_capacity(), capacity);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, ShrinkReleasesHighWaterMarkAfterClear) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q.push(TimePoint::origin() + Duration::millis(i), [] {}));
  }
  EXPECT_EQ(q.slot_capacity(), 64u);
  q.clear_and_shrink();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.slot_capacity(), 0u);

  // Stale ids from before the shrink must not alias re-created slots,
  // even though the slot indices start from zero again.
  const EventId fresh = q.push(TimePoint::origin() + Duration::millis(1), [] {});
  EXPECT_TRUE(q.pending(fresh));
  for (const EventId id : ids) {
    EXPECT_FALSE(q.pending(id));
    EXPECT_FALSE(q.cancel(id));
  }
  EXPECT_TRUE(q.pending(fresh));
  EXPECT_TRUE(q.cancel(fresh));
}

TEST(EventQueueTest, ShrinkKeepsLiveEventsAndFreeListConsistent) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(q.push(TimePoint::origin() + Duration::millis(i), [] {}));
  }
  // Free the tail half (and one interior slot, which cannot be released
  // because the slab is indexed) then shrink.
  for (int i = 8; i < 16; ++i) ASSERT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
  ASSERT_TRUE(q.cancel(ids[3]));
  q.shrink_to_fit();
  EXPECT_EQ(q.slot_capacity(), 8u);  // slots 0..7 survive (3 is free but interior)
  EXPECT_EQ(q.size(), 7u);

  // The rebuilt free list must hand out the interior free slot without
  // corrupting anything; pop order stays by time.
  q.push(TimePoint::origin() + Duration::millis(100), [] {});
  EXPECT_EQ(q.slot_capacity(), 8u);  // reused slot 3, no slab growth
  std::int64_t last = -1;
  while (!q.empty()) {
    const auto popped = q.pop();
    EXPECT_GT(popped.at.ns(), last);
    last = popped.at.ns();
  }
}

TEST(EventQueueTest, ShrinkOnBurstySimulatorBoundsRetainedCapacity) {
  // The long-lived-simulator pattern: a burst schedules thousands of
  // events, then steady state needs a handful. Without shrink the slab
  // retains the burst high-water mark forever; with the clear-with-shrink
  // policy it tracks the live set.
  EventQueue q;
  for (int i = 0; i < 4096; ++i) q.push(TimePoint::origin() + Duration::millis(i), [] {});
  EXPECT_EQ(q.slot_capacity(), 4096u);
  q.clear();
  EXPECT_EQ(q.slot_capacity(), 4096u);  // clear alone retains the slab
  q.shrink_to_fit();
  EXPECT_EQ(q.slot_capacity(), 0u);
  for (int i = 0; i < 4; ++i) q.push(TimePoint::origin() + Duration::millis(i), [] {});
  EXPECT_EQ(q.slot_capacity(), 4u);
}

TEST(EventQueueTest, CancelInMiddleOfHeapPreservesOrder) {
  // True O(log n) removal must keep the remaining pop order intact no
  // matter where in the heap the cancelled entry sits.
  for (int victim = 0; victim < 12; ++victim) {
    EventQueue q;
    std::vector<EventId> ids;
    std::vector<int> fired;
    for (int i = 0; i < 12; ++i) {
      ids.push_back(
          q.push(TimePoint::origin() + Duration::millis(11 - i), [&fired, i] { fired.push_back(i); }));
    }
    ASSERT_TRUE(q.cancel(ids[static_cast<std::size_t>(victim)]));
    while (!q.empty()) q.pop().action();
    ASSERT_EQ(fired.size(), 11u);
    for (std::size_t k = 1; k < fired.size(); ++k) EXPECT_LT(fired[k], fired[k - 1]);
    for (const int f : fired) EXPECT_NE(f, victim);
  }
}

TEST(SimulatorTest, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<std::int64_t> times;
  sim.schedule(Duration::millis(5), [&] { times.push_back(sim.now().ns()); });
  sim.schedule(Duration::millis(1), [&] { times.push_back(sim.now().ns()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{1'000'000, 5'000'000}));
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(SimulatorTest, NestedSchedulingFromHandlers) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule(Duration::millis(1), chain);
  };
  sim.schedule(Duration::millis(1), chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(5));
}

TEST(SimulatorTest, NegativeDelayRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(Duration::millis(-1), [] {}), std::invalid_argument);
}

TEST(SimulatorTest, ScheduleInPastRejected) {
  Simulator sim;
  sim.schedule(Duration::millis(2), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::origin() + Duration::millis(1), [] {}),
               std::invalid_argument);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Duration::millis(1), [&] { ++fired; });
  sim.schedule(Duration::millis(10), [&] { ++fired; });
  sim.run_until(TimePoint::origin() + Duration::millis(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(5));
  EXPECT_EQ(sim.queue_size(), 1u);
}

TEST(SimulatorTest, RunUntilExecutesEventsAtExactDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Duration::millis(5), [&] { ++fired; });
  sim.run_until(TimePoint::origin() + Duration::millis(5));
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, StopInterruptsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Duration::millis(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule(Duration::millis(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.queue_size(), 1u);
}

TEST(SimulatorTest, ResetClearsState) {
  Simulator sim;
  sim.schedule(Duration::millis(1), [] {});
  sim.run();
  sim.schedule(Duration::millis(1), [] {});
  sim.reset();
  EXPECT_TRUE(sim.queue_empty());
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(Duration::millis(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(RandomTest, DeterministicForSameSeed) {
  RandomEngine a{7};
  RandomEngine b{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  RandomEngine a{7};
  RandomEngine b{8};
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(RandomTest, SubstreamsAreStableAndIndependent) {
  const RandomEngine root{99};
  RandomEngine s1 = root.substream("alpha", 0);
  RandomEngine s1b = root.substream("alpha", 0);
  RandomEngine s2 = root.substream("alpha", 1);
  RandomEngine s3 = root.substream("beta", 0);
  EXPECT_EQ(s1.next_u64(), s1b.next_u64());
  EXPECT_NE(s1.next_u64(), s2.next_u64());
  EXPECT_NE(s2.next_u64(), s3.next_u64());
}

TEST(RandomTest, UniformBounds) {
  RandomEngine rng{5};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
  EXPECT_THROW((void)rng.uniform(3.0, 2.0), std::invalid_argument);
}

TEST(RandomTest, UniformMeanCloseToCenter) {
  RandomEngine rng{6};
  double sum = 0;
  const int k = 100000;
  for (int i = 0; i < k; ++i) sum += rng.uniform(0.0, 1.0);
  EXPECT_NEAR(sum / k, 0.5, 0.01);
}

TEST(RandomTest, ExponentialMeanMatches) {
  RandomEngine rng{11};
  double sum = 0;
  const int k = 200000;
  for (int i = 0; i < k; ++i) sum += rng.exponential_mean(2.5);
  EXPECT_NEAR(sum / k, 2.5, 0.05);
  EXPECT_THROW((void)rng.exponential_mean(0.0), std::invalid_argument);
}

TEST(RandomTest, BernoulliFrequency) {
  RandomEngine rng{12};
  int hits = 0;
  const int k = 100000;
  for (int i = 0; i < k; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / k, 0.3, 0.01);
}

TEST(RandomTest, CategoricalProportions) {
  RandomEngine rng{13};
  const std::vector<double> w{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int k = 100000;
  for (int i = 0; i < k; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(k), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(k), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(k), 0.6, 0.01);
  EXPECT_THROW((void)rng.categorical({}), std::invalid_argument);
  EXPECT_THROW((void)rng.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)rng.categorical({1.0, -1.0}), std::invalid_argument);
}

TEST(RandomTest, UniformIntCoversRangeInclusive) {
  RandomEngine rng{14};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(1, 4);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 4);
    saw_lo = saw_lo || x == 1;
    saw_hi = saw_hi || x == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, WeibullShapeOneIsExponential) {
  RandomEngine rng{15};
  double sum = 0;
  const int k = 200000;
  for (int i = 0; i < k; ++i) sum += rng.weibull(1.0, 2.0);
  EXPECT_NEAR(sum / k, 2.0, 0.05);
}

}  // namespace
}  // namespace sanperf::des
