// Unit tests for the stable-storage write-ahead log
// (consensus/durable_log.hpp) and the epoch-history membership oracle
// (consensus/membership.hpp): serialized append charging, watermark
// compaction, epoch installs / listener order / validation.
#include <gtest/gtest.h>

#include <vector>

#include "consensus/durable_log.hpp"
#include "consensus/membership.hpp"

namespace sanperf::consensus {
namespace {

// --- DurableLog --------------------------------------------------------------

TEST(DurableLogTest, ZeroLatencyAppendsCompleteInline) {
  DurableLog log;
  log.configure({.enabled = true, .append_latency_ms = 0.0});
  EXPECT_TRUE(log.enabled());
  EXPECT_DOUBLE_EQ(log.charge_ms(5.0), 0.0);
  EXPECT_DOUBLE_EQ(log.charge_ms(5.0), 0.0);
  EXPECT_EQ(log.stats().appends, 2u);
}

TEST(DurableLogTest, AppendsSerializeOnTheDeviceTail) {
  DurableLog log;
  log.configure({.enabled = true, .append_latency_ms = 2.0});
  // First append at t = 10 completes at 12; a second one issued at the same
  // instant queues behind it (completes at 14), like writes on one device.
  EXPECT_DOUBLE_EQ(log.charge_ms(10.0), 2.0);
  EXPECT_DOUBLE_EQ(log.charge_ms(10.0), 4.0);
  // An append issued after the tail drained pays only its own latency.
  EXPECT_DOUBLE_EQ(log.charge_ms(100.0), 2.0);
  EXPECT_EQ(log.stats().appends, 3u);
}

TEST(DurableLogTest, StateFoldsLastWriteWins) {
  DurableLog log;
  log.configure({.enabled = true});
  auto& rec = log.state(7);
  rec.started = true;
  rec.estimate = {42};
  rec.round = 1;
  log.state(7).round = 3;  // same instance: later write wins
  EXPECT_EQ(log.entries().size(), 1u);
  EXPECT_EQ(log.entries().at(7).round, 3);
  EXPECT_EQ(log.entries().at(7).estimate, (std::vector<std::int64_t>{42}));
}

TEST(DurableLogTest, CompactTruncatesBelowTheWatermarkOnly) {
  DurableLog log;
  log.configure({.enabled = true});
  for (std::int32_t cid = 0; cid < 6; ++cid) log.state(cid).started = true;
  log.compact(4);
  EXPECT_EQ(log.entries().size(), 2u);
  EXPECT_EQ(log.entries().begin()->first, 4);
  EXPECT_EQ(log.stats().truncated, 4u);
  EXPECT_EQ(log.stats().compactions, 1u);
  // A no-op compaction (nothing below the floor) is not counted.
  log.compact(4);
  EXPECT_EQ(log.stats().compactions, 1u);
}

// --- MembershipView ----------------------------------------------------------

TEST(MembershipViewTest, EpochHistoryStaysAddressable) {
  MembershipView view{{2, 0, 1}};  // normalized to sorted order
  EXPECT_EQ(view.epoch(), 0u);
  EXPECT_EQ(view.members(), (std::vector<MemberId>{0, 1, 2}));
  EXPECT_EQ(view.add(4), 1u);
  EXPECT_EQ(view.add(3), 2u);
  EXPECT_EQ(view.remove(0), 3u);
  // Every installed epoch keeps resolving (in-flight instances pin theirs).
  EXPECT_EQ(view.members_at(0), (std::vector<MemberId>{0, 1, 2}));
  EXPECT_EQ(view.members_at(1), (std::vector<MemberId>{0, 1, 2, 4}));
  EXPECT_EQ(view.members_at(2), (std::vector<MemberId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(view.members(), (std::vector<MemberId>{1, 2, 3, 4}));
  EXPECT_TRUE(view.is_member_at(0, 0));
  EXPECT_FALSE(view.is_member(0));
  EXPECT_THROW((void)view.members_at(9), std::out_of_range);
}

TEST(MembershipViewTest, ListenersRunInRegistrationOrderPerInstall) {
  MembershipView view{{0, 1}};
  std::vector<int> order;
  view.add_listener([&](MembershipView::Epoch e) { order.push_back(10 + static_cast<int>(e)); });
  view.add_listener([&](MembershipView::Epoch e) { order.push_back(20 + static_cast<int>(e)); });
  view.add(2);
  view.remove(0);
  EXPECT_EQ(order, (std::vector<int>{11, 21, 12, 22}));
}

TEST(MembershipViewTest, RejectsDegenerateChanges) {
  EXPECT_THROW(MembershipView{std::vector<MemberId>{}}, std::invalid_argument);
  EXPECT_THROW((MembershipView{{1, 1}}), std::invalid_argument);
  MembershipView view{{0}};
  EXPECT_THROW(view.add(0), std::invalid_argument);     // already a member
  EXPECT_THROW(view.remove(5), std::invalid_argument);  // not a member
  EXPECT_THROW(view.remove(0), std::invalid_argument);  // cannot empty the group
  EXPECT_EQ(view.epoch(), 0u);                          // rejected changes install nothing
}

}  // namespace
}  // namespace sanperf::consensus
