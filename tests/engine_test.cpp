// Tests for the parallel replication engine: RNG seed-splitting, the
// ReplicationRunner thread pool, mergeable accumulators, and the
// determinism contract (same master seed => bit-identical merged results
// at any thread count).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "core/measurement.hpp"
#include "core/replication.hpp"
#include "core/simulation.hpp"
#include "des/random.hpp"
#include "net/params.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace {

using namespace sanperf;

// --- RNG stream splitting ---------------------------------------------------

TEST(SeedSplitting, MatchesEngineSubstreams) {
  const std::uint64_t master = 20020612;
  const des::SeedSplitter split{master};
  const des::RandomEngine engine{master};
  for (std::uint64_t i : {0ULL, 1ULL, 7ULL, 999ULL}) {
    auto a = split.stream(i);
    auto b = engine.substream("rep", i);
    EXPECT_EQ(a.seed(), b.seed());
    for (int d = 0; d < 16; ++d) EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(SeedSplitting, StreamsAreIndependentAndStable) {
  const des::SeedSplitter split{42};
  // Stable across calls.
  EXPECT_EQ(split.stream_seed(3), split.stream_seed(3));
  // Distinct indices, labels, and masters give distinct streams.
  EXPECT_NE(split.stream_seed(0), split.stream_seed(1));
  EXPECT_NE(des::SeedSplitter(42, "exec").stream_seed(0), split.stream_seed(0));
  EXPECT_NE(des::SeedSplitter(43).stream_seed(0), split.stream_seed(0));
  // Derivation is the documented pure function.
  EXPECT_EQ(split.stream_seed(5), des::derive_seed(42, "rep", 5));
}

// --- ReplicationRunner ------------------------------------------------------

TEST(ReplicationRunner, MapCollectsResultsInIndexOrder) {
  const core::ReplicationRunner runner{8};
  EXPECT_EQ(runner.threads(), 8u);
  const auto out = runner.map(1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ReplicationRunner, RunsEveryIndexExactlyOnce) {
  const core::ReplicationRunner runner{4};
  std::vector<std::atomic<int>> hits(512);
  runner.for_each(512, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ReplicationRunner, PropagatesExceptions) {
  const core::ReplicationRunner runner{4};
  EXPECT_THROW(runner.for_each(64,
                               [](std::size_t i) {
                                 if (i == 13) throw std::runtime_error{"boom"};
                               }),
               std::runtime_error);
  // The pool survives a failed batch.
  const auto out = runner.map(8, [](std::size_t i) { return i; });
  EXPECT_EQ(out.back(), 7u);
}

TEST(ReplicationRunner, NestedCallsRunInline) {
  const core::ReplicationRunner runner{4};
  std::atomic<std::size_t> total{0};
  runner.for_each(16, [&](std::size_t) {
    runner.for_each(16, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 256u);
}

TEST(ReplicationRunner, HandlesEmptyAndSingleBatches) {
  const core::ReplicationRunner runner{4};
  runner.for_each(0, [](std::size_t) { FAIL() << "must not be called"; });
  const auto one = runner.map(1, [](std::size_t i) { return i + 41; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41u);
}

// --- Mergeable accumulators -------------------------------------------------

TEST(MergeableStats, SummaryMergeMatchesPooledStream) {
  des::RandomEngine rng{7};
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.normal(3.0, 2.0);

  stats::SummaryStats pooled;
  for (const double x : xs) pooled.add(x);

  stats::SummaryStats a, b, merged;
  for (std::size_t i = 0; i < xs.size(); ++i) (i < 200 ? a : b).add(xs[i]);
  merged.merge(a);
  merged.merge(b);

  EXPECT_EQ(merged.count(), pooled.count());
  EXPECT_EQ(merged.min(), pooled.min());
  EXPECT_EQ(merged.max(), pooled.max());
  EXPECT_NEAR(merged.mean(), pooled.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), pooled.variance(), 1e-10);
}

TEST(MergeableStats, EcdfMergeEqualsPooledSample) {
  const stats::Ecdf pooled{{5, 1, 4, 2, 3, 2.5}};
  stats::Ecdf merged{{5, 1, 4}};
  merged.merge(stats::Ecdf{{2, 3, 2.5}});
  EXPECT_EQ(merged.sorted_samples(), pooled.sorted_samples());
  EXPECT_DOUBLE_EQ(merged.eval(2.75), pooled.eval(2.75));

  // Merging into a default-constructed (empty) ECDF adopts the sample.
  stats::Ecdf empty;
  empty.merge(pooled);
  EXPECT_EQ(empty.sorted_samples(), pooled.sorted_samples());
}

TEST(MergeableStats, HistogramMergeAddsCounts) {
  stats::Histogram a{0, 10, 5};
  stats::Histogram b{0, 10, 5};
  for (double x : {-1.0, 1.0, 3.0, 9.0}) a.add(x);
  for (double x : {1.5, 11.0, 9.5}) b.add(x);
  a.merge(b);
  EXPECT_EQ(a.total(), 7u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.count(0), 2u);  // 1.0 and 1.5
  EXPECT_EQ(a.count(4), 2u);  // 9.0 and 9.5

  stats::Histogram wrong{0, 10, 6};
  EXPECT_THROW(a.merge(wrong), std::invalid_argument);
}

TEST(MergeableStats, MeasuredLatencyMergeAppendsShards) {
  core::MeasuredLatency a, b;
  a.latencies_ms = {1.0, 2.0};
  a.rounds = {1, 1};
  a.undecided = 1;
  b.latencies_ms = {3.0};
  b.rounds = {2};
  b.undecided = 2;
  a.merge(b);
  EXPECT_EQ(a.latencies_ms, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(a.rounds, (std::vector<std::int32_t>{1, 1, 2}));
  EXPECT_EQ(a.undecided, 3u);
}

// --- Determinism across thread counts ---------------------------------------

TEST(EngineDeterminism, SimulationIdenticalAt1And8Threads) {
  const core::ReplicationRunner one{1};
  const core::ReplicationRunner eight{8};
  const auto transport = sanmodels::TransportParams::nominal(3);

  const auto r1 = core::simulate_class1(3, transport, 200, 12345, one);
  const auto r8 = core::simulate_class1(3, transport, 200, 12345, eight);

  ASSERT_EQ(r1.rewards.size(), r8.rewards.size());
  EXPECT_EQ(r1.rewards, r8.rewards);  // bit-identical, not just close
  EXPECT_EQ(r1.dropped, r8.dropped);
  EXPECT_EQ(r1.summary.count(), r8.summary.count());
  EXPECT_EQ(r1.summary.mean(), r8.summary.mean());
  EXPECT_EQ(r1.summary.variance(), r8.summary.variance());
  EXPECT_EQ(r1.ecdf().sorted_samples(), r8.ecdf().sorted_samples());
}

TEST(EngineDeterminism, ParallelStudyMatchesSequentialReference) {
  sanmodels::ConsensusSanConfig cfg;
  cfg.n = 3;
  cfg.transport = sanmodels::TransportParams::nominal(3);
  const auto model = sanmodels::build_consensus_san(cfg);
  san::TransientStudy study{model.model, model.stop_predicate()};
  study.set_time_limit(des::Duration::seconds(10));

  const auto sequential = study.run(150, 777);
  const core::ReplicationRunner eight{8};
  const auto parallel = core::run_study(eight, study, 150, 777);

  EXPECT_EQ(sequential.rewards, parallel.rewards);
  EXPECT_EQ(sequential.dropped, parallel.dropped);
  EXPECT_EQ(sequential.summary.mean(), parallel.summary.mean());
  EXPECT_EQ(sequential.ci.half_width, parallel.ci.half_width);
}

TEST(EngineDeterminism, MeasurementIdenticalAt1And8Threads) {
  const core::ReplicationRunner one{1};
  const core::ReplicationRunner eight{8};
  const auto params = net::NetworkParams::defaults();
  const auto timers = net::TimerModel::ideal();

  const auto m1 = core::measure_latency(3, params, timers, -1, 50, 999, one);
  const auto m8 = core::measure_latency(3, params, timers, -1, 50, 999, eight);

  EXPECT_EQ(m1.latencies_ms, m8.latencies_ms);
  EXPECT_EQ(m1.rounds, m8.rounds);
  EXPECT_EQ(m1.undecided, m8.undecided);
}

}  // namespace
