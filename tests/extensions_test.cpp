// Tests of the future-work extensions: batch means, SAN rate rewards,
// throughput measurement and failure-detector detection time.
#include <gtest/gtest.h>

#include "core/extensions.hpp"
#include "core/measurement.hpp"
#include "core/workload.hpp"
#include "des/random.hpp"
#include "san/model.hpp"
#include "san/simulator.hpp"
#include "stats/batch_means.hpp"
#include "stats/ecdf.hpp"

namespace sanperf {
namespace {

// --------------------------------------------------------------------------
// BatchMeans
// --------------------------------------------------------------------------

TEST(BatchMeansTest, GroupsObservationsIntoBatches) {
  stats::BatchMeans bm{4};
  for (int i = 1; i <= 10; ++i) bm.add(i);
  EXPECT_EQ(bm.observations(), 10u);
  EXPECT_EQ(bm.batches(), 2u);  // the trailing partial batch is pending
  EXPECT_DOUBLE_EQ(bm.batch_means()[0], 2.5);
  EXPECT_DOUBLE_EQ(bm.batch_means()[1], 6.5);
  EXPECT_DOUBLE_EQ(bm.mean(), 4.5);
}

TEST(BatchMeansTest, CiCoversMeanOfIidStream) {
  des::RandomEngine rng{5};
  stats::BatchMeans bm{50};
  for (int i = 0; i < 5000; ++i) bm.add(rng.normal(3.0, 1.0));
  const auto ci = bm.mean_ci(0.95);
  EXPECT_TRUE(ci.contains(3.0));
  EXPECT_LT(ci.half_width, 0.2);
}

TEST(BatchMeansTest, CorrelatedStreamWiderCiThanNaive) {
  // A strongly autocorrelated stream: batch means must acknowledge the
  // correlation with a wider CI than the naive iid summary.
  des::RandomEngine rng{6};
  stats::SummaryStats naive;
  stats::BatchMeans bm{100};
  double x = 0;
  for (int i = 0; i < 20000; ++i) {
    x = 0.99 * x + rng.normal(0, 1);
    naive.add(x);
    bm.add(x);
  }
  EXPECT_GT(bm.mean_ci(0.90).half_width, naive.mean_ci(0.90).half_width * 2);
}

TEST(BatchMeansTest, RejectsZeroBatch) {
  EXPECT_THROW(stats::BatchMeans{0}, std::invalid_argument);
}

// --------------------------------------------------------------------------
// SAN rate rewards
// --------------------------------------------------------------------------

TEST(RateRewardTest, IntegratesTokenTime) {
  san::SanModel m;
  const auto a = m.place("a", 1);
  const auto b = m.place("b");
  const auto c = m.place("c");
  m.timed_activity("t1", san::Distribution::deterministic_ms(2)).in(a).out(b);
  m.timed_activity("t2", san::Distribution::deterministic_ms(3)).in(b).out(c);

  san::SanSimulator sim{m, des::RandomEngine{1}};
  const auto tokens_in_b =
      sim.add_rate_reward([b](const san::Marking& mk) { return static_cast<double>(mk.get(b)); });
  sim.reset(des::RandomEngine{1});  // rewards must survive reset wiring
  sim.run();
  // b holds one token from t=2 to t=5.
  EXPECT_DOUBLE_EQ(sim.rate_reward(tokens_in_b), 3.0);
  EXPECT_DOUBLE_EQ(sim.rate_reward_average(tokens_in_b), 3.0 / 5.0);
}

TEST(RateRewardTest, UtilisationOfAResource) {
  // Single server, 3 jobs of 2 ms arriving instantly: busy 6 of 6 ms.
  san::SanModel m;
  const auto jobs = m.place("jobs", 3);
  const auto server = m.place("server", 1);
  const auto busy = m.place("busy");
  const auto done = m.place("done");
  m.instant_activity("grab").in(jobs).in(server).out(busy);
  m.timed_activity("serve", san::Distribution::deterministic_ms(2)).in(busy).out(done).out(server);

  san::SanSimulator sim{m, des::RandomEngine{2}};
  const auto util =
      sim.add_rate_reward([busy](const san::Marking& mk) { return mk.get(busy) > 0 ? 1.0 : 0.0; });
  sim.reset(des::RandomEngine{2});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.rate_reward(util), 6.0);
  EXPECT_DOUBLE_EQ(sim.rate_reward_average(util), 1.0);
}

TEST(RateRewardTest, AccruesUpToTimeLimit) {
  san::SanModel m;
  const auto a = m.place("a", 1);
  m.timed_activity("loop", san::Distribution::deterministic_ms(100)).in(a).out(a);
  san::SanSimulator sim{m, des::RandomEngine{3}};
  const auto ones = sim.add_rate_reward([](const san::Marking&) { return 1.0; });
  sim.reset(des::RandomEngine{3});
  const auto res = sim.run(des::Duration::from_ms(42));
  EXPECT_EQ(res.reason, san::StopReason::kTimeLimit);
  EXPECT_DOUBLE_EQ(sim.rate_reward(ones), 42.0);
}

TEST(RateRewardTest, ResetClearsIntegrals) {
  san::SanModel m;
  const auto a = m.place("a", 1);
  const auto b = m.place("b");
  m.timed_activity("t", san::Distribution::deterministic_ms(5)).in(a).out(b);
  san::SanSimulator sim{m, des::RandomEngine{4}};
  const auto r = sim.add_rate_reward([](const san::Marking&) { return 2.0; });
  sim.reset(des::RandomEngine{4});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.rate_reward(r), 10.0);
  sim.reset(des::RandomEngine{5});
  EXPECT_DOUBLE_EQ(sim.rate_reward(r), 0.0);
}

// --------------------------------------------------------------------------
// Throughput
// --------------------------------------------------------------------------

namespace {

/// The back-to-back throughput extension as the workload engine models it:
/// one closed-loop client, zero think time, no warm-up.
core::WorkloadResult back_to_back(std::size_t n, const net::NetworkParams& params,
                                  std::size_t executions, std::uint64_t seed) {
  core::WorkloadConfig cfg;
  cfg.n = n;
  cfg.network = params;
  cfg.timers = net::TimerModel::ideal();
  cfg.seed = seed;
  core::WorkloadSpec stream;
  stream.arrivals = core::ArrivalProcess::kClosedLoop;
  stream.clients = 1;
  stream.think_ms = 0;
  stream.warmup = 0;
  stream.measured = executions;
  return core::run_workload(cfg, stream);
}

}  // namespace

TEST(ThroughputTest, AllExecutionsDecideAndRatesAreConsistent) {
  const auto res = back_to_back(3, net::NetworkParams::defaults(), 100, 11);
  EXPECT_EQ(res.stats.undecided, 0u);
  EXPECT_EQ(res.stats.decided, 100u);
  EXPECT_GT(res.stats.delivered_per_s, 0);
  // Rate x duration must reproduce the count.
  EXPECT_NEAR(res.stats.delivered_per_s * res.stats.duration_ms / 1000.0, 100.0, 1.0);
}

TEST(ThroughputTest, BackToBackSlowerThanIsolated) {
  const auto params = net::NetworkParams::defaults();
  const auto isolated =
      core::measure_latency(5, params, net::TimerModel::ideal(), -1, 100, 12);
  const auto b2b = back_to_back(5, params, 100, 12);
  // Interference between consecutive executions raises per-execution latency.
  EXPECT_GT(b2b.stats.latency_ci.mean, isolated.summary().mean() * 1.1);
  // ...and throughput must respect the isolated bound.
  EXPECT_LT(b2b.stats.delivered_per_s, 1000.0 / isolated.summary().mean());
}

TEST(ThroughputTest, ThroughputDecreasesWithN) {
  const auto params = net::NetworkParams::defaults();
  const auto t3 = back_to_back(3, params, 80, 13);
  const auto t7 = back_to_back(7, params, 80, 13);
  EXPECT_GT(t3.stats.delivered_per_s, t7.stats.delivered_per_s);
}

// --------------------------------------------------------------------------
// Detection time
// --------------------------------------------------------------------------

TEST(DetectionTimeTest, BoundedByTimeoutAndPeriod) {
  // Ideal timers: detection happens within (T - Th, Th + T + transit].
  const auto res = core::measure_detection_time(3, net::NetworkParams::defaults(),
                                                net::TimerModel::ideal(), 20.0, 25, 14);
  ASSERT_GE(res.samples_ms.size(), 40u);  // 2 monitors x 25 trials, minus edge cases
  for (const double d : res.samples_ms) {
    EXPECT_GT(d, 20.0 - 14.0 - 0.5);
    EXPECT_LT(d, 14.0 + 20.0 + 1.0);
  }
}

TEST(DetectionTimeTest, GrowsWithTimeout) {
  const auto params = net::NetworkParams::defaults();
  const auto fast = core::measure_detection_time(3, params, net::TimerModel::defaults(), 20.0,
                                                 20, 15);
  const auto slow = core::measure_detection_time(3, params, net::TimerModel::defaults(), 100.0,
                                                 20, 15);
  ASSERT_FALSE(fast.samples_ms.empty());
  ASSERT_FALSE(slow.samples_ms.empty());
  EXPECT_LT(fast.summary.mean(), slow.summary.mean());
}

TEST(DetectionTimeTest, QuantisedTimersStretchDetection) {
  // T = 40, Th = 28: ideal timers keep the true 28 ms heartbeat period
  // (mean detection ~ T - Th/2 = 26 ms); 10 ms ticks stretch the period to
  // 30 ms and delay the monitoring wake-ups, both of which push the mean
  // detection time up.
  const auto params = net::NetworkParams::defaults();
  auto quantised = net::TimerModel::defaults();
  quantised.p_minor_stall = quantised.p_major_stall = quantised.p_huge_stall = 0;  // tick only
  const auto ideal =
      core::measure_detection_time(3, params, net::TimerModel::ideal(), 40.0, 30, 16);
  const auto ticked = core::measure_detection_time(3, params, quantised, 40.0, 30, 16);
  ASSERT_FALSE(ideal.samples_ms.empty());
  ASSERT_FALSE(ticked.samples_ms.empty());
  EXPECT_NEAR(ideal.summary.mean(), 26.0, 3.0);
  EXPECT_GT(ticked.summary.mean(), ideal.summary.mean());
}

}  // namespace
}  // namespace sanperf
