// Tests of the declarative fault-injection subsystem: FaultPlan validation
// and JSON round-trips, FaultInjector event ordering on a live cluster
// (crash / recover / partition / loss / slowdown), the degenerate-plan
// equivalence with the paper's Table 1 crash runs, and thread-count
// bit-identicality of every registered fault scenario.
#include <gtest/gtest.h>

#include <any>
#include <map>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/measurement.hpp"
#include "faults/experiments.hpp"
#include "faults/injector.hpp"
#include "faults/plan.hpp"
#include "runtime/cluster.hpp"
#include "runtime/message.hpp"

namespace sanperf::faults {
namespace {

// --- FaultPlan ---------------------------------------------------------------

FaultPlan sample_plan() {
  FaultPlan plan;
  plan.add(FaultPlan::crash(0, 0));
  plan.add(FaultPlan::crash_recover(1, 12.5, 30));
  plan.add(FaultPlan::partition({0, 2}, 10, 25));
  plan.add(FaultPlan::loss(5, 100, 0.0625, 0.03125));
  plan.add(FaultPlan::cpu_slow(2, 0, 50, 4));
  plan.add(FaultPlan::cpu_slow(-1, 60, 10, 2));  // every host
  plan.add(FaultPlan::pipeline_slow(20, kForeverMs, 1.5));
  return plan;
}

TEST(FaultPlanTest, JsonRoundTripIsExact) {
  const FaultPlan plan = sample_plan();
  const std::string json = plan.to_json();
  const FaultPlan back = FaultPlan::from_json(json);
  EXPECT_EQ(plan, back);
  EXPECT_EQ(json, back.to_json());
}

TEST(FaultPlanTest, ParsesHandwrittenJsonWithDefaults) {
  const FaultPlan plan = FaultPlan::from_json(R"({"events": [
    {"kind": "crash", "at_ms": 50, "host": 1},
    {"kind": "loss", "at_ms": 0, "duration_ms": 10, "loss_p": 0.5},
    {"kind": "partition", "at_ms": 1, "duration_ms": 2, "group": [0]}
  ]})");
  ASSERT_EQ(plan.events().size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kCrash);
  EXPECT_TRUE(plan.events()[0].permanent());  // omitted duration = permanent
  EXPECT_EQ(plan.events()[1].duplicate_p, 0.0);
  EXPECT_EQ(plan.events()[2].group, (std::vector<HostId>{0}));
  plan.validate(3);
}

TEST(FaultPlanTest, MembershipAndRollingKindsRoundTrip) {
  FaultPlan plan;
  plan.add(FaultPlan::add_host(3, 35));
  plan.add(FaultPlan::remove_host(1, 80));
  plan.add(FaultPlan::rolling_restart(30, 60, 150));
  plan.add(FaultPlan::rolling_restart(200, 10, 0));  // all hosts together
  const FaultPlan back = FaultPlan::from_json(plan.to_json());
  EXPECT_EQ(plan, back);
  EXPECT_EQ(back.events()[2].stagger_ms, 150.0);
  // Omitted stagger_ms reads back as 0 (simultaneous bounce).
  const FaultPlan hand = FaultPlan::from_json(
      R"({"events": [{"kind": "rolling_restart", "at_ms": 5, "duration_ms": 10}]})");
  EXPECT_EQ(hand.events()[0].stagger_ms, 0.0);
  // Membership changes are consensus decisions, not initial crashes, and
  // need no frame filtering.
  EXPECT_TRUE(plan.initially_down().empty());
  EXPECT_FALSE(plan.filters_frames());
}

TEST(FaultPlanTest, ValidateRejectsBadEvents) {
  const auto bad = [](FaultEvent e, std::size_t n = 3) {
    EXPECT_THROW(FaultPlan{{e}}.validate(n), std::invalid_argument);
  };
  bad(FaultPlan::crash(3, 0));                         // host out of range
  bad(FaultPlan::crash(-1, 0));                        // no target
  bad(FaultPlan::crash_recover(0, 0, 0));              // zero downtime
  bad(FaultPlan::partition({}, 0, 10));                // empty group
  bad(FaultPlan::partition({0, 1, 2}, 0, 10));         // covers every host
  bad(FaultPlan::partition({0, 0}, 0, 10));            // repeated host
  bad(FaultPlan::loss(0, 10, 1.5));                    // p > 1
  bad(FaultPlan::loss(0, 10, 0));                      // p = 0 window
  bad(FaultPlan::cpu_slow(0, 0, 10, 0));               // factor <= 0
  bad(FaultPlan::add_host(3, 0));                      // member out of range
  bad(FaultPlan::remove_host(-1, 0));                  // no target
  bad(FaultPlan::rolling_restart(0, kForeverMs, 10));  // needs finite downtime
  FaultEvent neg_stagger = FaultPlan::rolling_restart(0, 10, 1);
  neg_stagger.stagger_ms = -1;
  bad(neg_stagger);                                    // stagger >= 0
  EXPECT_THROW(FaultPlan::from_json("{}"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::from_json(R"({"events":[{"at_ms":1}]})"), std::invalid_argument);
}

TEST(FaultPlanTest, InitiallyDownAndPartitionQueries) {
  const FaultPlan plan = sample_plan();
  EXPECT_EQ(plan.initially_down(), (std::vector<HostId>{0}));  // crash at 0, not at 12.5
  EXPECT_TRUE(plan.filters_frames());
  EXPECT_TRUE(plan.partitioned_at(15, 0, 1));   // {0,2} vs {1,...}
  EXPECT_FALSE(plan.partitioned_at(15, 0, 2));  // same side
  EXPECT_FALSE(plan.partitioned_at(40, 0, 1));  // healed
  EXPECT_FALSE(FaultPlan{}.filters_frames());
}

// --- FaultInjector on a live cluster ----------------------------------------

runtime::ClusterConfig tiny_cluster(std::size_t n, std::uint64_t seed = 11) {
  runtime::ClusterConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.timers = net::TimerModel::ideal();
  cfg.network.wire_service = {1.0, 0.09, 0.09, 0.0, 0.0};
  cfg.network.pipeline_latency = {1.0, 0.0, 0.0, 0.0, 0.0};
  return cfg;
}

/// Counts deliveries; used to probe connectivity under faults.
class CounterLayer : public runtime::Layer {
 public:
  void on_message(const runtime::Message&) override { ++received; }
  int received = 0;
};

/// Counts crash/restart transitions; used to probe recovery boundaries.
class LifecycleLayer : public runtime::Layer {
 public:
  void on_message(const runtime::Message&) override {}
  void on_crash() override { ++crashes; }
  void on_restart() override { ++restarts; }
  int crashes = 0;
  int restarts = 0;
};

void send_app(runtime::Cluster& cluster, runtime::HostId from, runtime::HostId to) {
  runtime::Message m;
  m.kind = runtime::MsgKind::kApp;
  cluster.process(from).send(m, to);
}

TEST(FaultInjectorTest, CrashRecoverySchedule) {
  runtime::Cluster cluster{tiny_cluster(2)};
  auto& r1 = cluster.process(1).add_layer<CounterLayer>();
  cluster.process(0).add_layer<CounterLayer>();
  FaultInjector injector{cluster, FaultPlan{}.add(FaultPlan::crash_recover(1, 10, 20))};
  injector.arm();

  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(15));
  EXPECT_TRUE(cluster.process(1).crashed());  // down inside [10, 30)
  send_app(cluster, 0, 1);
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(25));
  EXPECT_EQ(r1.received, 0);

  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(35));
  EXPECT_FALSE(cluster.process(1).crashed());  // warm restart at 30
  send_app(cluster, 0, 1);
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(45));
  EXPECT_EQ(r1.received, 1);
}

TEST(FaultInjectorTest, ImmediateCrashMatchesCrashInitially) {
  runtime::Cluster cluster{tiny_cluster(2)};
  cluster.process(0).add_layer<CounterLayer>();
  cluster.process(1).add_layer<CounterLayer>();
  FaultInjector injector{cluster, FaultPlan{{FaultPlan::crash(0, 0)}}};
  injector.arm();
  EXPECT_TRUE(cluster.process(0).crashed());  // before the first event runs
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(5));
  EXPECT_EQ(cluster.process(0).messages_sent(), 0u);
}

TEST(FaultInjectorTest, SameInstantBoundaryRecoversBeforeCrashing) {
  // Two windows sharing the instant 150 ms: the first window's recovery and
  // the second's crash. The injector arms every recovery before any crash,
  // so the host warm-restarts (running on_restart) and then goes straight
  // back down -- in either plan order.
  for (const bool reversed : {false, true}) {
    FaultPlan plan;
    if (reversed) {
      plan.add(FaultPlan::crash_recover(0, 150, 50));
      plan.add(FaultPlan::crash_recover(0, 100, 50));
    } else {
      plan.add(FaultPlan::crash_recover(0, 100, 50));
      plan.add(FaultPlan::crash_recover(0, 150, 50));
    }
    runtime::Cluster cluster{tiny_cluster(2)};
    auto& life = cluster.process(0).add_layer<LifecycleLayer>();
    cluster.process(1).add_layer<LifecycleLayer>();
    FaultInjector injector{cluster, plan};
    injector.arm();
    cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(175));
    EXPECT_TRUE(cluster.process(0).crashed()) << reversed;  // inside [150, 200)
    cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(210));
    EXPECT_FALSE(cluster.process(0).crashed()) << reversed;
    EXPECT_EQ(life.crashes, 2) << reversed;
    EXPECT_EQ(life.restarts, 2) << reversed;  // bounced at 150, final at 200
  }
}

TEST(FaultInjectorTest, RestartStormBouncesOneHostRepeatedly) {
  // Five contiguous crash/recover windows on host 1: every interior
  // boundary is a recover-then-crash tie, and the host ends up alive with
  // exactly five restarts.
  FaultPlan plan;
  for (int i = 0; i < 5; ++i) plan.add(FaultPlan::crash_recover(1, 10 + 20 * i, 20));
  runtime::Cluster cluster{tiny_cluster(2)};
  cluster.process(0).add_layer<LifecycleLayer>();
  auto& life = cluster.process(1).add_layer<LifecycleLayer>();
  FaultInjector injector{cluster, plan};
  injector.arm();
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(105));
  EXPECT_TRUE(cluster.process(1).crashed());  // last window [90, 110)
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(120));
  EXPECT_FALSE(cluster.process(1).crashed());
  EXPECT_EQ(life.crashes, 5);
  EXPECT_EQ(life.restarts, 5);
}

TEST(FaultInjectorTest, RollingRestartStaggersHosts) {
  // rolling_restart(10, 20, 30) on n = 3: host h is down over
  // [10 + 30h, 30 + 30h) -- one host at a time, each restarted once.
  runtime::Cluster cluster{tiny_cluster(3)};
  std::vector<LifecycleLayer*> lives;
  for (runtime::HostId h = 0; h < 3; ++h) {
    lives.push_back(&cluster.process(h).add_layer<LifecycleLayer>());
  }
  FaultInjector injector{cluster, FaultPlan{}.add(FaultPlan::rolling_restart(10, 20, 30))};
  injector.arm();
  const auto probe = [&](double ms, bool h0, bool h1, bool h2) {
    cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(ms));
    EXPECT_EQ(cluster.process(0).crashed(), h0) << ms;
    EXPECT_EQ(cluster.process(1).crashed(), h1) << ms;
    EXPECT_EQ(cluster.process(2).crashed(), h2) << ms;
  };
  probe(15, true, false, false);
  probe(45, false, true, false);
  probe(75, false, false, true);
  probe(95, false, false, false);
  for (const auto* life : lives) {
    EXPECT_EQ(life->crashes, 1);
    EXPECT_EQ(life->restarts, 1);
  }
}

TEST(FaultInjectorTest, PartitionDropsAcrossSidesThenHeals) {
  runtime::Cluster cluster{tiny_cluster(3)};
  std::vector<CounterLayer*> layers;
  for (runtime::HostId h = 0; h < 3; ++h) {
    layers.push_back(&cluster.process(h).add_layer<CounterLayer>());
  }
  FaultInjector injector{cluster, FaultPlan{{FaultPlan::partition({0}, 5, 10)}}};
  injector.arm();
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(6));

  send_app(cluster, 0, 1);  // across the cut: dropped
  send_app(cluster, 1, 0);  // across the cut: dropped
  send_app(cluster, 1, 2);  // inside the majority side: delivered
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(14));
  EXPECT_EQ(layers[0]->received, 0);
  EXPECT_EQ(layers[1]->received, 0);
  EXPECT_EQ(layers[2]->received, 1);
  EXPECT_EQ(injector.partition_drops(), 2u);

  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(16));
  send_app(cluster, 0, 1);  // healed at 15
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(20));
  EXPECT_EQ(layers[1]->received, 1);
}

TEST(FaultInjectorTest, LossAndDuplicationWindows) {
  runtime::Cluster cluster{tiny_cluster(2)};
  cluster.process(0).add_layer<CounterLayer>();
  auto& r1 = cluster.process(1).add_layer<CounterLayer>();
  // Certain loss in [0, 10), certain duplication in [20, 30).
  FaultPlan plan;
  plan.add(FaultPlan::loss(0, 10, 1.0));
  plan.add(FaultPlan::loss(20, 10, 0.0001, 1.0));
  // A p ~ 0 loss window must not mask the duplication draw behind it.
  FaultInjector injector{cluster, plan};
  injector.arm();

  cluster.run_until(des::TimePoint::origin());
  send_app(cluster, 0, 1);  // lost
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(12));
  EXPECT_EQ(r1.received, 0);
  EXPECT_EQ(injector.frames_lost(), 1u);

  send_app(cluster, 0, 1);  // outside every window: delivered once
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(21));
  EXPECT_EQ(r1.received, 1);

  send_app(cluster, 0, 1);  // duplicated
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(35));
  EXPECT_EQ(r1.received, 3);
  EXPECT_EQ(injector.frames_duplicated(), 1u);
}

TEST(FaultInjectorTest, SlowdownAppliesAndResets) {
  runtime::Cluster cluster{tiny_cluster(2)};
  cluster.process(0).add_layer<CounterLayer>();
  cluster.process(1).add_layer<CounterLayer>();
  FaultInjector injector{cluster, FaultPlan{{FaultPlan::cpu_slow(0, 5, 10, 4)}}};
  injector.arm();
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(6));
  EXPECT_DOUBLE_EQ(cluster.network().cpu_scale(0), 4.0);
  EXPECT_DOUBLE_EQ(cluster.network().cpu_scale(1), 1.0);
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(16));
  EXPECT_DOUBLE_EQ(cluster.network().cpu_scale(0), 1.0);  // reset at 15
}

TEST(FaultInjectorTest, OverlappingSlowdownsComposeByLastActive) {
  // A finite window's end must restore the still-active outer window's
  // factor, not blindly reset to nominal.
  runtime::Cluster cluster{tiny_cluster(2)};
  cluster.process(0).add_layer<CounterLayer>();
  cluster.process(1).add_layer<CounterLayer>();
  FaultPlan plan;
  plan.add(FaultPlan::cpu_slow(0, 0, kForeverMs, 4));
  plan.add(FaultPlan::cpu_slow(0, 10, 10, 2));
  FaultInjector injector{cluster, plan};
  injector.arm();
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(5));
  EXPECT_DOUBLE_EQ(cluster.network().cpu_scale(0), 4.0);
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(15));
  EXPECT_DOUBLE_EQ(cluster.network().cpu_scale(0), 2.0);  // inner window wins
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(25));
  EXPECT_DOUBLE_EQ(cluster.network().cpu_scale(0), 4.0);  // outer one restored
}

TEST(FaultInjectorTest, RejectsDoubleArmAndBadPlans) {
  runtime::Cluster cluster{tiny_cluster(2)};
  FaultInjector injector{cluster, FaultPlan{}};
  injector.arm();
  EXPECT_THROW(injector.arm(), std::logic_error);
  EXPECT_THROW((FaultInjector{cluster, FaultPlan{{FaultPlan::crash(5, 0)}}}),
               std::invalid_argument);
}

// --- Degenerate plan == the paper's crash runs -------------------------------

TEST(FaultHarnessTest, SingleCrashPlanReproducesTable1ExecutionsBitForBit) {
  // The acceptance gate: a one-event plan (coordinator crash at t = 0) must
  // reproduce the class-2 coordinator-crash measurement exactly -- same
  // seeds, same draws, same bits -- for both the empty and crashed cases.
  const auto params = net::NetworkParams::defaults();
  const auto timers = net::TimerModel::ideal();
  const FaultPlan crash0{{FaultPlan::crash(0, 0)}};
  for (std::size_t k = 0; k < 25; ++k) {
    const std::uint64_t seed = des::SeedSplitter{424242, "exec"}.stream_seed(k);
    const auto plain = core::run_latency_execution(5, params, timers, 0, k, seed);
    const auto faulty =
        run_fault_execution(core::Algorithm::kChandraToueg, 5, params, timers, crash0, k, seed);
    ASSERT_EQ(plain.latency_ms.has_value(), faulty.latency_ms.has_value()) << k;
    if (plain.latency_ms) EXPECT_EQ(*plain.latency_ms, *faulty.latency_ms) << k;
    EXPECT_EQ(plain.rounds, faulty.rounds) << k;

    const auto no_fault = core::run_latency_execution(5, params, timers, -1, k, seed);
    const auto empty_plan =
        run_fault_execution(core::Algorithm::kChandraToueg, 5, params, timers, FaultPlan{}, k,
                            seed);
    ASSERT_EQ(no_fault.latency_ms.has_value(), empty_plan.latency_ms.has_value()) << k;
    if (no_fault.latency_ms) EXPECT_EQ(*no_fault.latency_ms, *empty_plan.latency_ms) << k;
  }
}

TEST(FaultHarnessTest, MeasureFaultLatencyThreadCountInvariant) {
  const core::ReplicationRunner one{1};
  const core::ReplicationRunner four{4};
  const auto params = net::NetworkParams::defaults();
  const auto timers = net::TimerModel::ideal();
  const FaultPlan plan{{FaultPlan::loss(0, kForeverMs, 0.05)}};
  const auto a =
      measure_fault_latency(core::Algorithm::kChandraToueg, 3, params, timers, plan, 40, 99, one);
  const auto b =
      measure_fault_latency(core::Algorithm::kChandraToueg, 3, params, timers, plan, 40, 99,
                            four);
  EXPECT_EQ(a.latencies_ms, b.latencies_ms);  // bit-identical
  EXPECT_EQ(a.undecided, b.undecided);
}

TEST(FaultHarnessTest, Class3RunSurvivesPermanentInitialCrash) {
  // The initially-crashed host never ran on_start, so its detector has no
  // histories; the QoS fold must skip it instead of indexing past the end.
  const FaultPlan plan{{FaultPlan::crash(0, 0)}};
  const auto run = run_fault_class3(3, net::NetworkParams::defaults(),
                                    net::TimerModel::ideal(), 10.0, 8, plan, 7);
  EXPECT_EQ(run.executions.size(), 8u);
  for (const auto& exec : run.executions) EXPECT_TRUE(exec.decided());
}

TEST(FaultHarnessTest, MrLosesVolatileStateAcrossRecoveryLikeCt) {
  // Crash + warm restart mid-execution under MR: the rebooted participant
  // re-enters state-free (MrConsensus::on_restart) and the majority still
  // decides.
  const FaultPlan plan{{FaultPlan::crash_recover(1, 1.2, 2.0)}};
  const auto out = run_fault_execution(core::Algorithm::kMostefaouiRaynal, 3,
                                       net::NetworkParams::defaults(),
                                       net::TimerModel::ideal(), plan, 0, 123);
  EXPECT_TRUE(out.latency_ms.has_value());
}

TEST(FaultHarnessTest, SplitByWindowBucketsByOverlap) {
  std::vector<consensus::ExecutionResult> execs(4);
  const auto at = [](double ms) {
    return des::TimePoint::origin() + des::Duration::from_ms(ms);
  };
  execs[0].t0 = at(1);   // decided before the window
  execs[0].t_decide = at(2);
  execs[1].t0 = at(8);   // in flight when the window opens at 10
  execs[1].t_decide = at(12);
  execs[2].t0 = at(15);  // undecided inside the window
  execs[3].t0 = at(30);  // after
  execs[3].t_decide = at(31);
  const auto phased = split_by_window(execs, 10, 20);
  EXPECT_EQ(phased.before.latencies_ms.size(), 1u);
  EXPECT_EQ(phased.during.latencies_ms.size(), 1u);
  EXPECT_EQ(phased.during.undecided, 1u);
  EXPECT_EQ(phased.after.latencies_ms.size(), 1u);
}

// --- Registered fault scenarios ----------------------------------------------

core::Scale tiny_scale() {
  auto scale = core::Scale::quick();
  scale.class1_executions = 24;
  scale.class3_runs = 2;
  scale.class3_executions = 16;
  scale.sim_ns = {3};
  return scale;
}

TEST(FaultScenarioTest, GlobalRegistryListsFaultScenarios) {
  const auto& registry = core::CampaignRegistry::global();
  for (const char* name : {"crash_recovery_latency", "partition_heal", "lossy_consensus",
                           "slowdown_sweep", "recovery_under_load", "rolling_restart",
                           "membership_growth"}) {
    const auto* spec = registry.find(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_FALSE(spec->needs_calibration) << name;
  }
  // The builtin paper artifacts are all present too.
  EXPECT_NE(registry.find("table1"), nullptr);
  EXPECT_GE(registry.specs().size(), core::CampaignRegistry::builtin().specs().size() + 7);
}

TEST(FaultScenarioTest, EveryFaultScenarioThreadCountInvariant) {
  const core::ReplicationRunner one{1};
  const core::ReplicationRunner four{4};
  const auto& registry = core::CampaignRegistry::global();
  const std::map<std::string, std::map<std::string, std::string>> restrictions = {
      {"crash_recovery_latency", {{"downtime_ms", "60"}}},
      {"partition_heal", {{"partition_ms", "60"}}},
      {"lossy_consensus", {{"loss_pct", "0,5"}, {"algorithm", "ct"}}},
      {"slowdown_sweep", {{"factor", "1,4"}, {"resource", "cpu"}}},
  };
  for (const auto& [name, overrides] : restrictions) {
    core::RunOptions options;
    options.scale = tiny_scale();
    options.axis_overrides = overrides;
    options.runner = &one;
    const auto table1 = registry.run(name, options);
    options.runner = &four;
    const auto table4 = registry.run(name, options);
    EXPECT_EQ(table1.to_csv(), table4.to_csv()) << name;  // bit-identical
    EXPECT_GT(table1.row_count(), 0u) << name;
  }
}

TEST(FaultScenarioTest, ExplicitFaultPlanOverridesAxisPlans) {
  // A --fault-plan style override: lossy_consensus with an explicit empty
  // plan must reproduce its loss_pct = 0 baseline on every row.
  const core::ReplicationRunner one{1};
  core::RunOptions options;
  options.scale = tiny_scale();
  options.axis_overrides = {{"loss_pct", "0,10"}, {"algorithm", "ct"}};
  options.runner = &one;
  const auto& registry = core::CampaignRegistry::global();
  const auto normal = registry.run("lossy_consensus", options);
  options.fault_plan = FaultPlan{};  // overrides the loss windows
  const auto overridden = registry.run("lossy_consensus", options);

  ASSERT_EQ(overridden.row_count(), 2u);
  const auto ci = [](const core::ResultTable& t, std::size_t r) {
    return std::get<stats::MeanCI>(t.at(r, "latency_ms")).mean;
  };
  // The pct = 0 row is loss-free either way: same seeds, same bits.
  EXPECT_EQ(ci(overridden, 0), ci(normal, 0));
  // The pct = 10 row ran loss-free under the override, so it differs from
  // its lossy twin.
  EXPECT_NE(ci(normal, 1), ci(overridden, 1));
}

}  // namespace
}  // namespace sanperf::faults
