// Tests of failure detection: heartbeat FD behaviour, histories, QoS
// estimation equations and the abstract-FD parameter derivation.
#include <gtest/gtest.h>

#include "fd/failure_detector.hpp"
#include "fd/heartbeat_fd.hpp"
#include "fd/history.hpp"
#include "fd/qos.hpp"
#include "runtime/cluster.hpp"

namespace sanperf::fd {
namespace {

using runtime::Cluster;
using runtime::ClusterConfig;
using runtime::HostId;
using runtime::Message;
using runtime::MsgKind;

ClusterConfig fd_config(std::size_t n, std::uint64_t seed = 1) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.timers = net::TimerModel::ideal();  // exact heartbeat periods
  cfg.network.wire_service = {1.0, 0.09, 0.09, 0.0, 0.0};
  cfg.network.pipeline_latency = {1.0, 0.0, 0.0, 0.0, 0.0};
  return cfg;
}

TEST(StaticFdTest, FixedOutput) {
  StaticFd fd{{2u}};
  EXPECT_TRUE(fd.is_suspected(2));
  EXPECT_FALSE(fd.is_suspected(0));
  EXPECT_FALSE(fd.is_suspected(1));
}

TEST(PairHistoryTest, RecordsAlternatingTransitions) {
  PairHistory h;
  h.record(des::TimePoint::origin() + des::Duration::from_ms(10), true);
  h.record(des::TimePoint::origin() + des::Duration::from_ms(12), false);
  h.record(des::TimePoint::origin() + des::Duration::from_ms(20), true);
  EXPECT_EQ(h.trust_to_suspect_count(), 2u);
  EXPECT_EQ(h.suspect_to_trust_count(), 1u);
  EXPECT_TRUE(h.suspected_at(des::TimePoint::origin() + des::Duration::from_ms(11)));
  EXPECT_FALSE(h.suspected_at(des::TimePoint::origin() + des::Duration::from_ms(15)));
  EXPECT_TRUE(h.suspected_at(des::TimePoint::origin() + des::Duration::from_ms(25)));
}

TEST(PairHistoryTest, SuspectedTimeIntegral) {
  PairHistory h;
  h.record(des::TimePoint::origin() + des::Duration::from_ms(10), true);
  h.record(des::TimePoint::origin() + des::Duration::from_ms(13), false);
  h.record(des::TimePoint::origin() + des::Duration::from_ms(30), true);
  // Open suspicion until the end of the experiment at 35.
  const auto end = des::TimePoint::origin() + des::Duration::from_ms(35);
  EXPECT_DOUBLE_EQ(h.suspected_time(end).to_ms(), 3.0 + 5.0);
}

TEST(PairHistoryTest, RejectsOutOfOrderAndRepeats) {
  PairHistory h;
  EXPECT_THROW(h.record(des::TimePoint::origin(), false), std::logic_error);  // must start TS
  h.record(des::TimePoint::origin() + des::Duration::from_ms(5), true);
  EXPECT_THROW(h.record(des::TimePoint::origin() + des::Duration::from_ms(6), true),
               std::logic_error);
  EXPECT_THROW(h.record(des::TimePoint::origin() + des::Duration::from_ms(1), false),
               std::logic_error);
}

TEST(QosTest, PairEquationsMatchPaper) {
  // T_exp = 100 ms, one mistake of 4 ms: n_TS = n_ST = 1.
  PairHistory h;
  h.record(des::TimePoint::origin() + des::Duration::from_ms(50), true);
  h.record(des::TimePoint::origin() + des::Duration::from_ms(54), false);
  const auto end = des::TimePoint::origin() + des::Duration::from_ms(100);
  const auto q = estimate_pair_qos(h, end);
  ASSERT_TRUE(q.has_value());
  // T_MR = 2 * 100 / 2 = 100; T_M = 2 * 4 / 2 = 4.
  EXPECT_DOUBLE_EQ(q->t_mr_ms, 100.0);
  EXPECT_DOUBLE_EQ(q->t_m_ms, 4.0);
  EXPECT_DOUBLE_EQ(q->suspicion_probability(), 0.04);
}

TEST(QosTest, QuietPairHasNoEstimate) {
  PairHistory h;
  EXPECT_FALSE(estimate_pair_qos(h, des::TimePoint::origin() + des::Duration::from_ms(100)));
}

TEST(QosTest, AverageSkipsQuietPairs) {
  PairHistory noisy;
  noisy.record(des::TimePoint::origin() + des::Duration::from_ms(10), true);
  noisy.record(des::TimePoint::origin() + des::Duration::from_ms(12), false);
  PairHistory quiet;
  const auto end = des::TimePoint::origin() + des::Duration::from_ms(100);
  const auto avg = average_qos({&noisy, &quiet}, end);
  EXPECT_EQ(avg.pairs_used, 1u);
  EXPECT_EQ(avg.pairs_quiet, 1u);
  EXPECT_DOUBLE_EQ(avg.t_mr_ms, 100.0);
  EXPECT_DOUBLE_EQ(avg.t_m_ms, 2.0);
}

TEST(QosTest, ManyMistakesScaleRecurrence) {
  PairHistory h;
  for (int k = 0; k < 10; ++k) {
    h.record(des::TimePoint::origin() + des::Duration::from_ms(10.0 * k + 1), true);
    h.record(des::TimePoint::origin() + des::Duration::from_ms(10.0 * k + 2), false);
  }
  const auto end = des::TimePoint::origin() + des::Duration::from_ms(100);
  const auto q = estimate_pair_qos(h, end);
  ASSERT_TRUE(q.has_value());
  EXPECT_DOUBLE_EQ(q->t_mr_ms, 10.0);  // 2 * 100 / 20
  EXPECT_DOUBLE_EQ(q->t_m_ms, 1.0);
}

TEST(AbstractFdParamsTest, DerivationFromQos) {
  QosEstimate qos;
  qos.t_mr_ms = 50.0;
  qos.t_m_ms = 5.0;
  const auto p = AbstractFdParams::from_qos(qos, AbstractFdParams::Sojourn::kExponential);
  EXPECT_DOUBLE_EQ(p.trust_mean_ms, 45.0);
  EXPECT_DOUBLE_EQ(p.suspect_mean_ms, 5.0);
  EXPECT_DOUBLE_EQ(p.p_initial_suspect, 0.1);
  EXPECT_EQ(p.sojourn, AbstractFdParams::Sojourn::kExponential);
}

TEST(AbstractFdParamsTest, RejectsDegenerateQos) {
  QosEstimate qos;
  qos.t_mr_ms = 0;
  qos.t_m_ms = 0;
  EXPECT_THROW((void)AbstractFdParams::from_qos(qos, AbstractFdParams::Sojourn::kDeterministic),
               std::invalid_argument);
  qos.t_mr_ms = 5;
  qos.t_m_ms = 6;
  EXPECT_THROW((void)AbstractFdParams::from_qos(qos, AbstractFdParams::Sojourn::kDeterministic),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// HeartbeatFd on a live cluster
// --------------------------------------------------------------------------

Cluster make_fd_cluster(std::size_t n, double timeout_ms, std::uint64_t seed = 3) {
  Cluster cluster{fd_config(n, seed)};
  const auto params = HeartbeatFdParams::from_timeout_ms(timeout_ms);
  for (HostId i = 0; i < static_cast<HostId>(n); ++i) {
    cluster.process(i).add_layer<HeartbeatFd>(params);
  }
  return cluster;
}

TEST(HeartbeatFdTest, NoSuspicionsWithIdealTimersAndGenerousTimeout) {
  auto cluster = make_fd_cluster(3, /*timeout_ms=*/10.0);
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(200));
  for (HostId i = 0; i < 3; ++i) {
    const auto& hb = cluster.process(i).layer<HeartbeatFd>();
    for (HostId j = 0; j < 3; ++j) {
      if (i == j) continue;
      EXPECT_FALSE(hb.is_suspected(j)) << i << " suspects " << j;
      EXPECT_TRUE(hb.histories()[j].transitions().empty());
    }
    EXPECT_GT(hb.heartbeats_sent(), 20u);
  }
}

TEST(HeartbeatFdTest, CrashedProcessGetsSuspectedWithinTimeout) {
  auto cluster = make_fd_cluster(3, 10.0);
  cluster.crash_at(2, des::TimePoint::origin() + des::Duration::from_ms(50));
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(100));
  for (HostId i = 0; i < 2; ++i) {
    const auto& hb = cluster.process(i).layer<HeartbeatFd>();
    EXPECT_TRUE(hb.is_suspected(2));
    EXPECT_FALSE(hb.is_suspected(1 - i));
    const auto& h = hb.histories()[2];
    ASSERT_EQ(h.transitions().size(), 1u);
    // The last heartbeat left up to Th before the crash, so the suspicion
    // lands in [crash + T - Th, crash + Th + T + slack].
    const double at = h.transitions()[0].at.to_ms();
    EXPECT_GE(at, 50.0 + 10.0 - 7.0 - 0.5);
    EXPECT_LE(at, 50.0 + 7.0 + 10.0 + 1.0);
  }
}

TEST(HeartbeatFdTest, SuspicionClearsWhenMessagesResume) {
  // Quantised timers with a forced stall make the sender miss its deadline
  // once; the suspicion must clear on the next heartbeat.
  ClusterConfig cfg = fd_config(2, 7);
  cfg.timers = net::TimerModel::ideal();
  cfg.timers.tick_ms = 10.0;  // heartbeats effectively every 10 ms
  Cluster cluster{cfg};
  const HeartbeatFdParams params{des::Duration::from_ms(7.0), des::Duration::from_ms(10.5)};
  cluster.process(0).add_layer<HeartbeatFd>(params);
  cluster.process(1).add_layer<HeartbeatFd>(params);
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(500));
  const auto& hb0 = cluster.process(0).layer<HeartbeatFd>();
  const auto& h = hb0.histories()[1];
  // Tick-locked periods are ~10 ms < 10.5 ms timeout: occasional mistakes
  // are possible but every suspicion must have cleared quickly.
  for (std::size_t k = 0; k + 1 < h.transitions().size(); k += 2) {
    const double duration =
        (h.transitions()[k + 1].at - h.transitions()[k].at).to_ms();
    EXPECT_LT(duration, 2.0);
  }
}

TEST(HeartbeatFdTest, ApplicationMessagesResetTimer) {
  // One-way probes: process 0 sends app messages to 1 often enough that 1
  // never suspects 0 even though 0's heartbeat period is far beyond T.
  ClusterConfig cfg = fd_config(2, 9);
  Cluster cluster{cfg};
  const HeartbeatFdParams starved{des::Duration::from_ms(500.0), des::Duration::from_ms(10.0)};
  cluster.process(0).add_layer<HeartbeatFd>(starved);
  cluster.process(1).add_layer<HeartbeatFd>(starved);
  cluster.run_until(des::TimePoint::origin());
  for (int k = 0; k < 100; ++k) {
    cluster.sim().schedule_at(des::TimePoint::origin() + des::Duration::from_ms(5.0 * k + 1),
                              [&cluster] {
                                Message m;
                                m.kind = MsgKind::kApp;
                                cluster.process(0).send(m, 1);
                              });
  }
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(480));
  const auto& hb1 = cluster.process(1).layer<HeartbeatFd>();
  EXPECT_FALSE(hb1.is_suspected(0));
  EXPECT_TRUE(hb1.histories()[0].transitions().empty());
}

TEST(HeartbeatFdTest, ListenersFireOnTransitions) {
  auto cluster = make_fd_cluster(2, 10.0);
  cluster.run_until(des::TimePoint::origin());
  int suspect_events = 0;
  int trust_events = 0;
  cluster.process(0).layer<HeartbeatFd>().add_listener([&](HostId peer, bool suspected) {
    EXPECT_EQ(peer, 1u);
    (suspected ? suspect_events : trust_events)++;
  });
  cluster.crash_at(1, des::TimePoint::origin() + des::Duration::from_ms(30));
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(100));
  EXPECT_EQ(suspect_events, 1);
  EXPECT_EQ(trust_events, 0);
}

TEST(HeartbeatFdTest, QosPipelineOnRealHistories) {
  // Sender with tick-locked period slightly above the timeout: mistakes
  // recur regularly, and the estimated QoS must be internally consistent.
  ClusterConfig cfg = fd_config(2, 11);
  cfg.timers = net::TimerModel::ideal();
  cfg.timers.tick_ms = 10.0;
  Cluster cluster{cfg};
  const HeartbeatFdParams params{des::Duration::from_ms(7.0), des::Duration::from_ms(8.0)};
  cluster.process(0).add_layer<HeartbeatFd>(params);
  cluster.process(1).add_layer<HeartbeatFd>(params);
  const auto end = des::TimePoint::origin() + des::Duration::from_ms(2000);
  cluster.run_until(end);
  const auto& h = cluster.process(0).layer<HeartbeatFd>().histories()[1];
  ASSERT_GT(h.trust_to_suspect_count(), 10u);
  const auto q = estimate_pair_qos(h, end);
  ASSERT_TRUE(q.has_value());
  // Tick-locked period ~10 ms, timeout 8 ms: the monitoring thread wakes on
  // the tick just before the next heartbeat lands, so a mistake occurs
  // almost every period and lasts only a message transit.
  EXPECT_NEAR(q->t_mr_ms, 10.0, 2.0);
  EXPECT_GT(q->t_m_ms, 0.01);
  EXPECT_LT(q->t_m_ms, 1.0);
}

// --------------------------------------------------------------------------
// Warm restart (fault injection)
// --------------------------------------------------------------------------

TEST(HeartbeatFdTest, WarmRestartResumesMonitoringWithoutStaleTimestamps) {
  auto cluster = make_fd_cluster(3, 10.0);
  cluster.crash_at(2, des::TimePoint::origin() + des::Duration::from_ms(50));
  cluster.recover_at(2, des::TimePoint::origin() + des::Duration::from_ms(120));
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(120));
  const auto hb_at_restart = cluster.process(2).layer<HeartbeatFd>().heartbeats_sent();
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(300));

  for (HostId i = 0; i < 2; ++i) {
    const auto& hb = cluster.process(i).layer<HeartbeatFd>();
    // The downtime shows as one suspect interval, cleared by the first
    // post-recovery heartbeat.
    EXPECT_FALSE(hb.is_suspected(2));
    const auto& h = hb.histories()[2];
    ASSERT_EQ(h.transitions().size(), 2u);
    EXPECT_TRUE(h.transitions()[0].to_suspect);
    EXPECT_GE(h.transitions()[1].at.to_ms(), 120.0);
    EXPECT_LE(h.transitions()[1].at.to_ms(), 120.0 + 7.0 + 1.0);  // first heartbeat
  }
  // The restarted monitor's own clock started fresh: no stale last-message
  // timestamps, so it never wrongly suspected the live peers...
  const auto& hb2 = cluster.process(2).layer<HeartbeatFd>();
  EXPECT_TRUE(hb2.histories()[0].transitions().empty());
  EXPECT_TRUE(hb2.histories()[1].transitions().empty());
  // ...and its heartbeat loop is running again (pre-crash chains stay dead).
  EXPECT_GT(hb2.heartbeats_sent(), hb_at_restart + 10);
}

TEST(HeartbeatFdTest, RebootFasterThanTimeoutSurfacesAsIncarnationBlip) {
  // Downtime 2 ms << timeout 10 ms: the timeout can never detect the
  // crash, but the restarted host's messages carry a higher incarnation,
  // so monitors record an instantaneous suspect -> trust blip (and notify
  // listeners) instead of silently trusting a peer that lost its state.
  auto cluster = make_fd_cluster(3, 10.0);
  std::vector<std::pair<HostId, bool>> events;
  cluster.run_until(des::TimePoint::origin());
  cluster.process(0).layer<HeartbeatFd>().add_listener(
      [&](HostId peer, bool suspected) { events.emplace_back(peer, suspected); });
  cluster.crash_at(2, des::TimePoint::origin() + des::Duration::from_ms(50));
  cluster.recover_at(2, des::TimePoint::origin() + des::Duration::from_ms(52));
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(100));

  const auto& h = cluster.process(0).layer<HeartbeatFd>().histories()[2];
  ASSERT_EQ(h.transitions().size(), 2u);
  EXPECT_TRUE(h.transitions()[0].to_suspect);
  EXPECT_FALSE(h.transitions()[1].to_suspect);
  EXPECT_EQ(h.transitions()[0].at, h.transitions()[1].at);  // zero-width blip
  EXPECT_GE(h.transitions()[0].at.to_ms(), 52.0);           // the first reboot message
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<HostId, bool>{2, true}));
  EXPECT_EQ(events[1], (std::pair<HostId, bool>{2, false}));
  EXPECT_FALSE(cluster.process(0).layer<HeartbeatFd>().is_suspected(2));
}

TEST(HeartbeatFdTest, RestartWhileSuspectingKeepsHistoryAlternating) {
  // Monitor 0 suspects the crashed 1, then 0 itself crashes and restarts:
  // the restart must close the open suspicion (suspect -> trust at the
  // restart instant) so later transitions keep alternating.
  auto cluster = make_fd_cluster(2, 10.0);
  cluster.crash_at(1, des::TimePoint::origin() + des::Duration::from_ms(20));
  cluster.crash_at(0, des::TimePoint::origin() + des::Duration::from_ms(60));
  cluster.recover_at(0, des::TimePoint::origin() + des::Duration::from_ms(80));
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(200));

  const auto& h = cluster.process(0).layer<HeartbeatFd>().histories()[1];
  ASSERT_GE(h.transitions().size(), 3u);
  EXPECT_TRUE(h.transitions()[0].to_suspect);                    // the crash of 1
  EXPECT_FALSE(h.transitions()[1].to_suspect);                   // closed at restart
  EXPECT_DOUBLE_EQ(h.transitions()[1].at.to_ms(), 80.0);
  EXPECT_TRUE(h.transitions()[2].to_suspect);                    // 1 is still down
  EXPECT_TRUE(cluster.process(0).layer<HeartbeatFd>().is_suspected(1));
}

}  // namespace
}  // namespace sanperf::fd
