// Tests for the flattened campaign fan-out: ShardSpace enumeration,
// ReplicationRunner::run_flat, pairwise tree merging of shards, and the
// determinism contract of the flattened paper drivers (bit-identical
// outputs at any thread count).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/experiments.hpp"
#include "core/measurement.hpp"
#include "core/replication.hpp"
#include "core/simulation.hpp"
#include "des/random.hpp"
#include "net/params.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"

namespace {

using namespace sanperf;

// --- ShardSpace -------------------------------------------------------------

TEST(ShardSpace, EnumeratesGroupsInOrderWithSplitterSeeds) {
  core::ShardSpace space;
  EXPECT_EQ(space.size(), 0u);
  EXPECT_EQ(space.add_group(3, 111, "exec"), 0u);
  EXPECT_EQ(space.add_group(0, 222), 1u);  // empty grid points are legal
  EXPECT_EQ(space.add_group(2, 333, "run"), 2u);
  ASSERT_EQ(space.size(), 5u);
  ASSERT_EQ(space.group_count(), 3u);
  EXPECT_EQ(space.group_size(0), 3u);
  EXPECT_EQ(space.group_size(1), 0u);
  EXPECT_EQ(space.group_size(2), 2u);

  const des::SeedSplitter exec_seeds{111, "exec"};
  const des::SeedSplitter run_seeds{333, "run"};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto t = space.task(i);
    EXPECT_EQ(t.group, 0u);
    EXPECT_EQ(t.index, i);
    EXPECT_EQ(t.seed, exec_seeds.stream_seed(i));
  }
  for (std::size_t i = 3; i < 5; ++i) {
    const auto t = space.task(i);
    EXPECT_EQ(t.group, 2u);
    EXPECT_EQ(t.index, i - 3);
    EXPECT_EQ(t.seed, run_seeds.stream_seed(i - 3));
  }
}

TEST(ShardSpace, RunFlatCollectsGroupedResultsInIndexOrder) {
  core::ShardSpace space;
  space.add_group(100, 1);
  space.add_group(37, 2);
  space.add_group(63, 3);
  const core::ReplicationRunner runner{4};
  const auto out = runner.run_flat(space, [](const core::ShardSpace::Task& t) {
    return t.group * 1000 + t.index;
  });
  ASSERT_EQ(out.size(), 3u);
  ASSERT_EQ(out[0].size(), 100u);
  ASSERT_EQ(out[1].size(), 37u);
  ASSERT_EQ(out[2].size(), 63u);
  for (std::size_t g = 0; g < 3; ++g) {
    for (std::size_t i = 0; i < out[g].size(); ++i) EXPECT_EQ(out[g][i], g * 1000 + i);
  }
}

TEST(ShardSpace, RunFlatMatchesSequentialGroupLoops) {
  // The flattened fan-out must reproduce what per-group map() calls produce.
  core::ShardSpace space;
  space.add_group(50, 7, "exec");
  space.add_group(20, 9, "exec");
  const core::ReplicationRunner one{1};
  const core::ReplicationRunner four{4};
  const auto fn = [](const core::ShardSpace::Task& t) {
    return static_cast<double>(des::mix64(t.seed ^ t.index));
  };
  const auto flat1 = one.run_flat(space, fn);
  const auto flat4 = four.run_flat(space, fn);
  EXPECT_EQ(flat1, flat4);

  const des::SeedSplitter g0{7, "exec"};
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(flat1[0][i], static_cast<double>(des::mix64(g0.stream_seed(i) ^ i)));
  }
}

// --- Tree merge -------------------------------------------------------------

TEST(TreeMerge, EcdfShardsEqualPooledSample) {
  des::RandomEngine rng{5};
  std::vector<double> all;
  std::vector<stats::Ecdf> shards;
  for (int s = 0; s < 9; ++s) {  // odd shard count exercises the ride-along
    std::vector<double> xs(17);
    for (auto& x : xs) x = rng.normal(2.0, 1.0);
    all.insert(all.end(), xs.begin(), xs.end());
    shards.emplace_back(xs);
  }
  const auto merged = core::tree_merge(
      std::move(shards), [](stats::Ecdf& a, stats::Ecdf& b) { a.merge(b); });
  EXPECT_EQ(merged.sorted_samples(), stats::Ecdf{all}.sorted_samples());
}

TEST(TreeMerge, HistogramShardsEqualSequentialFold) {
  des::RandomEngine rng{6};
  stats::Histogram sequential{0, 10, 20};
  std::vector<stats::Histogram> shards;
  for (int s = 0; s < 6; ++s) {
    stats::Histogram h{0, 10, 20};
    for (int i = 0; i < 50; ++i) {
      const double x = rng.uniform(-1.0, 12.0);
      h.add(x);
      sequential.add(x);
    }
    shards.push_back(h);
  }
  const auto merged = core::tree_merge(
      std::move(shards), [](stats::Histogram& a, stats::Histogram& b) { a.merge(b); });
  ASSERT_EQ(merged.total(), sequential.total());
  EXPECT_EQ(merged.underflow(), sequential.underflow());
  EXPECT_EQ(merged.overflow(), sequential.overflow());
  for (std::size_t b = 0; b < merged.bins(); ++b) EXPECT_EQ(merged.count(b), sequential.count(b));
}

TEST(TreeMerge, ConcatenationPreservesShardOrder) {
  // Vector concatenation is associative: the tree must yield the exact
  // sequential append order, with or without a runner driving the pairs.
  std::vector<std::vector<int>> shards;
  std::vector<int> expected;
  for (int s = 0; s < 11; ++s) {
    std::vector<int> xs(s + 1);
    std::iota(xs.begin(), xs.end(), 100 * s);
    expected.insert(expected.end(), xs.begin(), xs.end());
    shards.push_back(xs);
  }
  const auto concat = [](std::vector<int>& a, std::vector<int>& b) {
    a.insert(a.end(), b.begin(), b.end());
  };
  auto copy = shards;
  EXPECT_EQ(core::tree_merge(std::move(copy), concat), expected);
  const core::ReplicationRunner runner{4};
  EXPECT_EQ(core::tree_merge(std::move(shards), concat, &runner), expected);
}

TEST(TreeMerge, HandlesEmptyAndSingleShardInputs) {
  const auto concat = [](std::vector<int>& a, std::vector<int>& b) {
    a.insert(a.end(), b.begin(), b.end());
  };
  EXPECT_TRUE(core::tree_merge(std::vector<std::vector<int>>{}, concat).empty());
  EXPECT_EQ(core::tree_merge(std::vector<std::vector<int>>{{1, 2}}, concat),
            (std::vector<int>{1, 2}));
}

// --- Flattened drivers: determinism across thread counts --------------------

core::Scale tiny_scale() {
  auto scale = core::Scale::quick();
  scale.delay_probes = 150;  // three probe shards: exercises partial shards
  scale.class1_executions = 16;
  scale.sim_replications = 16;
  scale.class3_runs = 2;
  scale.class3_executions = 12;
  scale.ns = {3, 5};
  scale.sim_ns = {3, 5};
  scale.timeouts_ms = {5, 40};
  return scale;
}

TEST(FlatDeterminism, CalibrationProbesIdenticalAt1And4Threads) {
  const core::ReplicationRunner one{1};
  const core::ReplicationRunner four{4};
  const auto params = net::NetworkParams::defaults();
  EXPECT_EQ(core::measure_unicast_delays(params, 150, 42, one),
            core::measure_unicast_delays(params, 150, 42, four));
  EXPECT_EQ(core::measure_broadcast_delays(params, 5, 150, 43, one),
            core::measure_broadcast_delays(params, 5, 150, 43, four));
}

TEST(FlatDeterminism, Fig7aIdenticalAt1And4Threads) {
  const core::ReplicationRunner one{1};
  const core::ReplicationRunner four{4};
  auto ctx = core::make_context(tiny_scale(), 77);
  ctx.timers = net::TimerModel::ideal();

  ctx.runner = &one;
  const auto rows1 = core::run_fig7a(ctx);
  ctx.runner = &four;
  const auto rows4 = core::run_fig7a(ctx);

  ASSERT_EQ(rows1.size(), rows4.size());
  for (std::size_t i = 0; i < rows1.size(); ++i) {
    EXPECT_EQ(rows1[i].n, rows4[i].n);
    EXPECT_EQ(rows1[i].latencies_ms, rows4[i].latencies_ms);  // bit-identical
    EXPECT_EQ(rows1[i].mean.mean, rows4[i].mean.mean);
    EXPECT_EQ(rows1[i].mean.half_width, rows4[i].mean.half_width);
    EXPECT_EQ(rows1[i].undecided, rows4[i].undecided);
  }
}

TEST(FlatDeterminism, Table1IdenticalAt1And4Threads) {
  const core::ReplicationRunner one{1};
  const core::ReplicationRunner four{4};
  auto ctx = core::make_context(tiny_scale(), 78);
  ctx.timers = net::TimerModel::ideal();

  ctx.runner = &one;
  const auto rows1 = core::run_table1(ctx);
  ctx.runner = &four;
  const auto rows4 = core::run_table1(ctx);

  ASSERT_EQ(rows1.size(), rows4.size());
  for (std::size_t i = 0; i < rows1.size(); ++i) {
    EXPECT_EQ(rows1[i].n, rows4[i].n);
    EXPECT_EQ(rows1[i].meas_no_crash.mean, rows4[i].meas_no_crash.mean);
    EXPECT_EQ(rows1[i].meas_coord_crash.mean, rows4[i].meas_coord_crash.mean);
    EXPECT_EQ(rows1[i].meas_part_crash.mean, rows4[i].meas_part_crash.mean);
    EXPECT_EQ(rows1[i].sim_no_crash, rows4[i].sim_no_crash);
    EXPECT_EQ(rows1[i].sim_coord_crash, rows4[i].sim_coord_crash);
    EXPECT_EQ(rows1[i].sim_part_crash, rows4[i].sim_part_crash);
  }
  // The calibrated n carry simulation cells; the rest do not.
  EXPECT_TRUE(rows1[0].sim_no_crash.has_value());
  EXPECT_TRUE(rows1[1].sim_coord_crash.has_value());
}

TEST(FlatDeterminism, Class3MeasurementsIdenticalAt1And4Threads) {
  const core::ReplicationRunner one{1};
  const core::ReplicationRunner four{4};
  auto ctx = core::make_context(tiny_scale(), 79);

  ctx.runner = &one;
  const auto pts1 = core::run_class3_measurements(ctx, {3});
  ctx.runner = &four;
  const auto pts4 = core::run_class3_measurements(ctx, {3});

  ASSERT_EQ(pts1.size(), pts4.size());
  for (std::size_t i = 0; i < pts1.size(); ++i) {
    EXPECT_EQ(pts1[i].n, pts4[i].n);
    EXPECT_EQ(pts1[i].timeout_ms, pts4[i].timeout_ms);
    EXPECT_EQ(pts1[i].meas.latency_ms.mean, pts4[i].meas.latency_ms.mean);
    EXPECT_EQ(pts1[i].meas.all_latencies_ms, pts4[i].meas.all_latencies_ms);
    EXPECT_EQ(pts1[i].meas.undecided, pts4[i].meas.undecided);
    EXPECT_EQ(pts1[i].meas.pooled_qos.t_mr_ms, pts4[i].meas.pooled_qos.t_mr_ms);
  }
}

TEST(FlatDeterminism, Fig7bIdenticalAt1And4Threads) {
  const core::ReplicationRunner one{1};
  const core::ReplicationRunner four{4};
  auto ctx = core::make_context(tiny_scale(), 81);
  ctx.timers = net::TimerModel::ideal();

  ctx.runner = &one;
  const auto r1 = core::run_fig7b(ctx);
  ctx.runner = &four;
  const auto r4 = core::run_fig7b(ctx);

  EXPECT_EQ(r1.measured_ms, r4.measured_ms);  // bit-identical
  EXPECT_EQ(r1.sim_ms, r4.sim_ms);
  EXPECT_EQ(r1.sweep.best_t_send_ms, r4.sweep.best_t_send_ms);
  ASSERT_EQ(r1.sweep.candidates.size(), r4.sweep.candidates.size());
  for (std::size_t i = 0; i < r1.sweep.candidates.size(); ++i) {
    EXPECT_EQ(r1.sweep.candidates[i].ks_distance, r4.sweep.candidates[i].ks_distance);
    EXPECT_EQ(r1.sweep.candidates[i].sim_mean_ms, r4.sweep.candidates[i].sim_mean_ms);
    EXPECT_EQ(r1.sweep.candidates[i].sim_latencies_ms, r4.sweep.candidates[i].sim_latencies_ms);
  }
}

TEST(FlatDeterminism, FlattenedFig7bMatchesNestedCampaigns) {
  // The single-space fig7b driver must reproduce what the nested
  // measure_latency + per-candidate simulate_class1 calls produced before
  // the flattening: same seeds, same folds, same bits.
  auto ctx = core::make_context(tiny_scale(), 82);
  ctx.timers = net::TimerModel::ideal();
  const auto result = core::run_fig7b(ctx);

  const auto meas = core::measure_latency(5, ctx.network, ctx.timers, -1,
                                          ctx.scale.class1_executions, ctx.seed + 105);
  EXPECT_EQ(result.measured_ms, meas.latencies_ms);

  for (const auto& [t_send, sims] : result.sim_ms) {
    const auto transport = core::make_transport(ctx.unicast_fit, ctx.broadcast_fits.at(5),
                                                t_send);
    const auto study = core::simulate_class1(5, transport, ctx.scale.sim_replications,
                                             ctx.seed + 7);
    EXPECT_EQ(sims, study.rewards) << "t_send=" << t_send;
  }
}

TEST(FlatDeterminism, SweepTsendIdenticalAt1And4ThreadsAndMatchesNested) {
  const core::ReplicationRunner one{1};
  const core::ReplicationRunner four{4};
  const auto ctx = core::make_context(tiny_scale(), 83);
  const auto meas = core::measure_latency(5, ctx.network, net::TimerModel::ideal(), -1,
                                          ctx.scale.class1_executions, 584);
  const stats::Ecdf measured{meas.latencies_ms};
  const std::vector<double> candidates = {0.005, 0.025, 0.035};

  const auto s1 = core::sweep_tsend(measured, ctx.unicast_fit, ctx.broadcast_fits.at(5),
                                    candidates, 16, 59, one);
  const auto s4 = core::sweep_tsend(measured, ctx.unicast_fit, ctx.broadcast_fits.at(5),
                                    candidates, 16, 59, four);
  EXPECT_EQ(s1.best_t_send_ms, s4.best_t_send_ms);
  ASSERT_EQ(s1.candidates.size(), s4.candidates.size());
  for (std::size_t i = 0; i < s1.candidates.size(); ++i) {
    EXPECT_EQ(s1.candidates[i].ks_distance, s4.candidates[i].ks_distance);
    EXPECT_EQ(s1.candidates[i].sim_latencies_ms, s4.candidates[i].sim_latencies_ms);
    // The flattened sweep reproduces the nested per-candidate study.
    const auto transport = core::make_transport(ctx.unicast_fit, ctx.broadcast_fits.at(5),
                                                candidates[i]);
    const auto study = core::simulate_class1(5, transport, 16, 59);
    EXPECT_EQ(s1.candidates[i].sim_latencies_ms, study.rewards);
    EXPECT_EQ(s1.candidates[i].sim_mean_ms, study.summary.mean());
  }
}

TEST(FlatDeterminism, Fig9bIdenticalAt1And4Threads) {
  const core::ReplicationRunner one{1};
  const core::ReplicationRunner four{4};
  auto ctx = core::make_context(tiny_scale(), 84);

  ctx.runner = &one;
  const auto pts1 = core::run_class3_measurements(ctx, ctx.scale.sim_ns);
  const auto rows1 = core::run_fig9b(ctx, pts1);
  ctx.runner = &four;
  const auto pts4 = core::run_class3_measurements(ctx, ctx.scale.sim_ns);
  const auto rows4 = core::run_fig9b(ctx, pts4);

  ASSERT_EQ(rows1.size(), rows4.size());
  ASSERT_GT(rows1.size(), 0u);
  for (std::size_t i = 0; i < rows1.size(); ++i) {
    EXPECT_EQ(rows1[i].n, rows4[i].n);
    EXPECT_EQ(rows1[i].timeout_ms, rows4[i].timeout_ms);
    EXPECT_EQ(rows1[i].meas_ms, rows4[i].meas_ms);  // bit-identical
    EXPECT_EQ(rows1[i].sim_det_ms, rows4[i].sim_det_ms);
    EXPECT_EQ(rows1[i].sim_exp_ms, rows4[i].sim_exp_ms);
    EXPECT_GT(rows1[i].sim_det_ms, 0.0);
  }
}

TEST(FlatDeterminism, FlattenedFig7aMatchesNestedMeasureLatency) {
  // The flattened driver must reproduce the per-n nested campaign exactly:
  // same seeds, same fold, same bits.
  auto ctx = core::make_context(tiny_scale(), 80);
  ctx.timers = net::TimerModel::ideal();
  const auto rows = core::run_fig7a(ctx);
  ASSERT_EQ(rows.size(), 2u);
  for (std::size_t g = 0; g < rows.size(); ++g) {
    const std::size_t n = ctx.scale.ns[g];
    const auto nested = core::measure_latency(n, ctx.network, ctx.timers, -1,
                                              ctx.scale.class1_executions, ctx.seed + 100 + n);
    EXPECT_EQ(rows[g].latencies_ms, nested.latencies_ms);
    EXPECT_EQ(rows[g].undecided, nested.undecided);
  }
}

}  // namespace
