// Cross-module integration tests: the full combined methodology
// (emulator measurement -> calibration -> SAN simulation -> validation),
// the QoS round trip through the abstract FD submodel, and end-to-end
// properties the paper's evaluation relies on.
#include <gtest/gtest.h>

#include "core/calibration.hpp"
#include "core/experiments.hpp"
#include "core/measurement.hpp"
#include "core/simulation.hpp"
#include "fd/qos.hpp"
#include "san/simulator.hpp"
#include "sanmodels/fd_submodel.hpp"
#include "stats/ks.hpp"

namespace sanperf {
namespace {

// The paper's central workflow at small scale: measure, calibrate, simulate,
// and require the model to track the measurement for several n.
TEST(CombinedMethodologyTest, CalibratedModelTracksEmulator) {
  auto scale = core::Scale::quick();
  scale.sim_ns = {3, 5};
  const auto ctx = core::make_context(scale, 424242);
  for (const std::size_t n : {3u, 5u}) {
    const auto meas = core::measure_latency(n, ctx.network, net::TimerModel::ideal(), -1, 400,
                                            90 + n);
    const auto sim = core::simulate_class1(n, ctx.transport(n), 400, 91 + n);
    const double ratio = sim.summary.mean() / meas.summary().mean();
    EXPECT_GT(ratio, 0.75) << "n=" << n;
    EXPECT_LT(ratio, 1.35) << "n=" << n;
    // Distribution-level agreement: the CDFs overlap substantially.
    const double ks = stats::ks_distance(sim.ecdf(), stats::Ecdf{meas.latencies_ms});
    EXPECT_LT(ks, 0.45) << "n=" << n;
  }
}

// Table 1's qualitative structure, measured end to end on both sides.
TEST(CombinedMethodologyTest, CrashScenarioDirections) {
  const auto params = net::NetworkParams::defaults();
  const auto timers = net::TimerModel::ideal();

  // Emulator: coordinator crash slower everywhere; n=3 participant-crash
  // anomaly (increase).
  const auto ok3 = core::measure_latency(3, params, timers, -1, 400, 21);
  const auto coord3 = core::measure_latency(3, params, timers, 0, 400, 22);
  const auto part3 = core::measure_latency(3, params, timers, 1, 400, 23);
  EXPECT_GT(coord3.summary().mean(), ok3.summary().mean() * 1.1);
  EXPECT_GT(part3.summary().mean(), ok3.summary().mean());

  // SAN: coordinator crash slower; participant crash FASTER (the broadcast
  // simplification hides the anomaly -- the paper's Section 5.3 finding).
  const auto transport = sanmodels::TransportParams::nominal(3);
  const auto sok = core::simulate_class1(3, transport, 600, 24);
  const auto scoord = core::simulate_class2(3, transport, 0, 600, 25);
  const auto spart = core::simulate_class2(3, transport, 1, 600, 24);
  EXPECT_GT(scoord.summary.mean(), sok.summary.mean() * 1.15);
  EXPECT_LT(spart.summary.mean(), sok.summary.mean());
}

// QoS round trip: parameterise the abstract FD with known (T_MR, T_M), run
// it, re-estimate the QoS from its trajectory with the paper's equations,
// and recover the inputs. Validates the estimator and the submodel against
// each other.
class QosRoundTripTest
    : public ::testing::TestWithParam<std::tuple<double, double, fd::AbstractFdParams::Sojourn>> {
};

TEST_P(QosRoundTripTest, EstimatorRecoversModelParameters) {
  const auto [t_mr, t_m, sojourn] = GetParam();
  fd::QosEstimate qos;
  qos.t_mr_ms = t_mr;
  qos.t_m_ms = t_m;
  const auto params = fd::AbstractFdParams::from_qos(qos, sojourn);

  san::SanModel m;
  const auto places = sanmodels::make_qos_fd(m, "fd", params);
  san::SanSimulator sim{m, des::RandomEngine{77}};

  // Rebuild the transition history by watching the susp places.
  fd::PairHistory history;
  bool suspected = places.suspected(m.initial_marking());
  sim.set_fire_hook([&](san::ActivityId, des::TimePoint at) {
    const bool now_suspected = places.suspected(sim.marking());
    if (now_suspected != suspected) {
      if (!history.transitions().empty() || now_suspected) {
        history.record(at, now_suspected);
      }
      suspected = now_suspected;
    }
  });
  const double horizon_ms = 400.0 * t_mr;  // ~400 mistake cycles
  sim.run(des::Duration::from_ms(horizon_ms));

  const auto est = fd::estimate_pair_qos(history, sim.now());
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->t_mr_ms, t_mr, 0.10 * t_mr);
  EXPECT_NEAR(est->t_m_ms, t_m, 0.15 * t_m + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QosRoundTripTest,
    ::testing::Values(
        std::make_tuple(10.0, 2.0, fd::AbstractFdParams::Sojourn::kDeterministic),
        std::make_tuple(10.0, 2.0, fd::AbstractFdParams::Sojourn::kExponential),
        std::make_tuple(50.0, 5.0, fd::AbstractFdParams::Sojourn::kDeterministic),
        std::make_tuple(50.0, 5.0, fd::AbstractFdParams::Sojourn::kExponential),
        std::make_tuple(20.0, 0.5, fd::AbstractFdParams::Sojourn::kExponential)),
    [](const auto& info) {
      // NOTE: no structured bindings here -- the commas inside [a, b, c]
      // would split the INSTANTIATE macro's arguments.
      return "tmr" + std::to_string(static_cast<int>(std::get<0>(info.param))) + "_tm" +
             std::to_string(static_cast<int>(10 * std::get<1>(info.param))) +
             (std::get<2>(info.param) == fd::AbstractFdParams::Sojourn::kDeterministic ? "_det"
                                                                                       : "_exp");
    });

// The class-3 pipeline end to end: measured QoS parameterises the SAN
// model; good QoS must put the class-3 simulation at the class-1 level.
TEST(CombinedMethodologyTest, Class3PipelineDegeneratesToClass1AtLargeT) {
  auto scale = core::Scale::quick();
  const auto ctx = core::make_context(scale, 31415);
  const auto agg = core::measure_class3(3, ctx.network, ctx.timers, /*timeout_ms=*/100.0,
                                        /*runs=*/2, /*executions=*/40, 32);
  const auto transport = ctx.transport(3);
  const auto class1 = core::simulate_class1(3, transport, 300, 33);

  double class3_mean;
  const auto& qos = agg.pooled_qos;
  if (qos.pairs_used == 0 || !(qos.t_m_ms > 0) || qos.t_m_ms >= qos.t_mr_ms) {
    class3_mean = class1.summary.mean();  // no mistakes at all
  } else {
    const auto params =
        fd::AbstractFdParams::from_qos(qos, fd::AbstractFdParams::Sojourn::kExponential);
    class3_mean = core::simulate_class3(3, transport, params, 300, 34).summary.mean();
  }
  EXPECT_NEAR(class3_mean, class1.summary.mean(), 0.15 * class1.summary.mean());
}

// Determinism across the whole stack: identical seeds give identical
// campaign results.
TEST(CombinedMethodologyTest, CampaignsAreReproducible) {
  const auto params = net::NetworkParams::defaults();
  const auto a = core::measure_latency(3, params, net::TimerModel::defaults(), -1, 50, 55);
  const auto b = core::measure_latency(3, params, net::TimerModel::defaults(), -1, 50, 55);
  EXPECT_EQ(a.latencies_ms, b.latencies_ms);

  const auto c3a = core::measure_class3_run(3, params, net::TimerModel::defaults(), 5.0, 30, 56);
  const auto c3b = core::measure_class3_run(3, params, net::TimerModel::defaults(), 5.0, 30, 56);
  EXPECT_EQ(c3a.latency.latencies_ms, c3b.latency.latencies_ms);
  EXPECT_DOUBLE_EQ(c3a.qos.t_mr_ms, c3b.qos.t_mr_ms);
}

// Consensus safety under the harshest setting we run anywhere: tiny
// timeout, stall-prone timers, many executions -- agreement and validity
// must hold for every decided instance.
TEST(CombinedMethodologyTest, SafetyUnderHeavySuspicions) {
  const auto run = core::measure_class3_run(5, net::NetworkParams::defaults(),
                                            net::TimerModel::defaults(), 1.0, 60, 57);
  // Liveness: the overwhelming majority of executions decide.
  EXPECT_LT(run.latency.undecided, 6u);
  for (const double lat : run.latency.latencies_ms) EXPECT_GT(lat, 0.0);
  for (const auto rounds : run.latency.rounds) EXPECT_GE(rounds, 1);
}

// Fig 7b as a property: the KS-based sweep must prefer the true t_send
// (0.025 ms) over badly wrong candidates.
TEST(CombinedMethodologyTest, TsendSweepPrefersGroundTruth) {
  auto scale = core::Scale::quick();
  scale.class1_executions = 250;
  scale.sim_replications = 250;
  const auto ctx = core::make_context(scale, 2718);
  const auto meas = core::measure_latency(5, ctx.network, net::TimerModel::ideal(), -1,
                                          scale.class1_executions, 58);
  const auto sweep = core::sweep_tsend(stats::Ecdf{meas.latencies_ms}, ctx.unicast_fit,
                                       ctx.broadcast_fits.at(5), {0.005, 0.025, 0.035}, 250, 59);
  double ks_true = 0, ks_low = 0;
  for (const auto& cand : sweep.candidates) {
    if (cand.t_send_ms == 0.025) ks_true = cand.ks_distance;
    if (cand.t_send_ms == 0.005) ks_low = cand.ks_distance;
  }
  EXPECT_LT(ks_true, ks_low);
}

}  // namespace
}  // namespace sanperf
