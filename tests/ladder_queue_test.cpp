// The ladder queue's contract is the EventQueue contract: same handles,
// same (time, insertion-seq) total order, same slab reuse discipline. The
// core test here is the randomized equivalence fuzz -- identical
// push/cancel/pop interleavings against both backends must yield identical
// pop sequences, which is exactly the property that makes SANPERF_QUEUE a
// pure performance knob (either backend reproduces every golden bit for
// bit).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "des/event_queue.hpp"
#include "des/ladder_queue.hpp"
#include "des/random.hpp"
#include "des/simulator.hpp"
#include "des/time.hpp"

namespace sanperf::des {
namespace {

TimePoint at_ms(double ms) { return TimePoint::origin() + Duration::from_ms(ms); }

TEST(LadderQueueTest, OrdersByTime) {
  LadderQueue q;
  std::vector<int> fired;
  q.push(at_ms(2), [&] { fired.push_back(2); });
  q.push(at_ms(1), [&] { fired.push_back(1); });
  q.push(at_ms(3), [&] { fired.push_back(3); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(LadderQueueTest, SameInstantPopsInPushOrder) {
  LadderQueue q;
  std::vector<int> fired;
  // Enough same-time events to overflow the bottom threshold and force
  // rung refinement to give up on splitting them (width 1 ns): FIFO order
  // must survive every internal reorganisation.
  const auto t = at_ms(1);
  for (int i = 0; i < 200; ++i) {
    q.push(t, [&fired, i] { fired.push_back(i); });
  }
  // A later band so the same-instant block is not the whole queue.
  for (int i = 200; i < 210; ++i) {
    q.push(at_ms(5 + i), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  ASSERT_EQ(fired.size(), 210u);
  for (int i = 0; i < 210; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(LadderQueueTest, CancelRemovesEventAcrossTiers) {
  LadderQueue q;
  // Spread events so all three tiers are populated after the first pop.
  std::vector<EventId> ids;
  for (int i = 0; i < 300; ++i) {
    ids.push_back(q.push(at_ms(0.001 * i), [] {}));
  }
  (void)q.pop();  // forces seeding: rungs + bottom active, tail still in top
  // Cancel a spread of the remaining events, wherever they sit.
  std::size_t cancelled = 0;
  for (std::size_t i = 1; i < ids.size(); i += 7) {
    if (q.cancel(ids[i])) ++cancelled;
  }
  EXPECT_GT(cancelled, 0u);
  EXPECT_EQ(q.size(), 299u - cancelled);
  // The survivors still pop in time order.
  TimePoint last = TimePoint::origin();
  while (!q.empty()) {
    const auto popped = q.pop();
    EXPECT_GE(popped.at, last);
    last = popped.at;
  }
}

TEST(LadderQueueTest, StaleIdOnReusedSlotDoesNotCancelNewEvent) {
  LadderQueue q;
  const EventId old_id = q.push(at_ms(1), [] {});
  (void)q.pop();  // slot released and recycled below
  bool fired = false;
  const EventId fresh = q.push(at_ms(2), [&] { fired = true; });
  EXPECT_FALSE(q.pending(old_id));
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_TRUE(q.pending(fresh));
  q.pop().action();
  EXPECT_TRUE(fired);
}

TEST(LadderQueueTest, PopOnEmptyThrows) {
  LadderQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
}

TEST(LadderQueueTest, CancelledSlotIsReusedWithoutSlabGrowth) {
  LadderQueue q;
  const EventId a = q.push(at_ms(1), [] {});
  ASSERT_TRUE(q.cancel(a));
  const std::size_t capacity = q.slot_capacity();
  for (int i = 0; i < 100; ++i) {
    const EventId id = q.push(at_ms(1 + i), [] {});
    EXPECT_NE(id, a) << "recycled slot must carry a fresh generation";
    EXPECT_TRUE(q.cancel(id));
    EXPECT_EQ(q.slot_capacity(), capacity);
  }
}

TEST(LadderQueueTest, ClearAndShrinkReleasesSlabAndStalesIds) {
  LadderQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(q.push(at_ms(0.01 * i), [] {}));
  }
  (void)q.pop();  // activate rungs/bottom so the shrink covers live tiers
  q.clear_and_shrink();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.slot_capacity(), 0u);
  for (const EventId id : ids) {
    EXPECT_FALSE(q.pending(id));
    EXPECT_FALSE(q.cancel(id));
  }
  // Still functional, and recycled slots never resurrect old handles.
  std::vector<int> order;
  const EventId fresh = q.push(at_ms(2), [&] { order.push_back(2); });
  q.push(at_ms(1), [&] { order.push_back(1); });
  for (const EventId id : ids) EXPECT_NE(id, fresh);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// The load-bearing property: a random interleaving of push/cancel/pop
// replayed against both backends yields the same (time, payload) pop
// sequence. EventIds are not compared -- the two backends recycle free
// slots in different orders after cancels -- but cancel() outcomes are:
// the k-th issued handle must behave identically in both.
TEST(LadderQueueTest, RandomizedEquivalenceWithHeap) {
  for (const std::uint64_t seed : {7u, 19u, 1234u}) {
    RandomEngine rng{seed};
    EventQueue heap;
    LadderQueue ladder;
    std::vector<std::pair<EventId, EventId>> handles;  // k-th push in each
    std::vector<std::pair<std::int64_t, int>> heap_pops;
    std::vector<std::pair<std::int64_t, int>> ladder_pops;
    int payload = 0;
    for (int step = 0; step < 20'000; ++step) {
      const double u = rng.uniform01();
      if (u < 0.55 || heap.empty()) {
        // Clustered times with occasional far-future outliers, so the
        // ladder actually exercises top/rung/bottom migration.
        const std::int64_t base = rng.uniform_int(0, 50'000);
        const std::int64_t far = rng.bernoulli(0.05) ? rng.uniform_int(0, 40'000'000) : 0;
        const auto at = TimePoint::origin() + Duration::nanos(base + far);
        const int tag = payload++;
        const EventId h = heap.push(at, [&heap_pops, at, tag] {
          heap_pops.emplace_back((at - TimePoint::origin()).ns(), tag);
        });
        const EventId l = ladder.push(at, [&ladder_pops, at, tag] {
          ladder_pops.emplace_back((at - TimePoint::origin()).ns(), tag);
        });
        handles.emplace_back(h, l);
      } else if (u < 0.72 && !handles.empty()) {
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1));
        EXPECT_EQ(heap.cancel(handles[idx].first), ladder.cancel(handles[idx].second));
      } else {
        ASSERT_EQ(heap.size(), ladder.size());
        ASSERT_EQ(heap.next_time(), ladder.next_time());
        auto hp = heap.pop();
        auto lp = ladder.pop();
        ASSERT_EQ(hp.at, lp.at);
        hp.action();
        lp.action();
        ASSERT_EQ(heap_pops.back(), ladder_pops.back());
      }
    }
    // Drain both completely; the tails must agree element for element.
    while (!heap.empty()) {
      heap.pop().action();
      ASSERT_FALSE(ladder.empty());
      ladder.pop().action();
    }
    EXPECT_TRUE(ladder.empty());
    EXPECT_EQ(heap_pops, ladder_pops);
  }
}

TEST(SimulatorBackendTest, LadderBackendRunsIdenticalSchedule) {
  // The same little simulation on both backends: identical fire order.
  const auto run = [](QueueBackend backend) {
    Simulator sim{backend};
    std::vector<int> fired;
    sim.schedule(Duration::from_ms(2.0), [&] { fired.push_back(2); });
    sim.schedule(Duration::from_ms(1.0), [&fired, &sim] {
      fired.push_back(1);
      sim.schedule(Duration::from_ms(0.5), [&fired] { fired.push_back(3); });
    });
    const EventId dropped = sim.schedule(Duration::from_ms(1.2), [&] { fired.push_back(99); });
    sim.cancel(dropped);
    sim.run_until(TimePoint::origin() + Duration::from_ms(10.0));
    return fired;
  };
  EXPECT_EQ(run(QueueBackend::kHeap), run(QueueBackend::kLadder));
  EXPECT_EQ(to_string(QueueBackend::kHeap), std::string{"heap"});
  EXPECT_EQ(to_string(QueueBackend::kLadder), std::string{"ladder"});
}

}  // namespace
}  // namespace sanperf::des
