# Runs the same tiny campaign under the heap backend and under
# SANPERF_QUEUE=ladder, then diffs the two CSVs at --tol 0.0. The ladder
# queue is only allowed to exist because it is bit-identical; this is the
# ctest-level pin of that contract.
#
# Invoked as:
#   cmake -DSANPERF_CLI=<path> -DOUT_DIR=<dir> -P ladder_smoke.cmake

set(heap_csv "${OUT_DIR}/ladder_smoke_heap.csv")
set(ladder_csv "${OUT_DIR}/ladder_smoke_ladder.csv")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env SANPERF_SCALE=quick SANPERF_QUEUE=heap
          ${SANPERF_CLI} run table1 --scale quick --set n=3
          --set scenario=coordinator-crash --threads 2 --format csv
          --out ${heap_csv}
  RESULT_VARIABLE rc_heap)
if(NOT rc_heap EQUAL 0)
  message(FATAL_ERROR "heap-backend run failed with rc=${rc_heap}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env SANPERF_SCALE=quick SANPERF_QUEUE=ladder
          ${SANPERF_CLI} run table1 --scale quick --set n=3
          --set scenario=coordinator-crash --threads 2 --format csv
          --out ${ladder_csv}
  RESULT_VARIABLE rc_ladder)
if(NOT rc_ladder EQUAL 0)
  message(FATAL_ERROR "ladder-backend run failed with rc=${rc_ladder}")
endif()

execute_process(
  COMMAND ${SANPERF_CLI} diff ${heap_csv} ${ladder_csv} --tol 0.0
  RESULT_VARIABLE rc_diff)
if(NOT rc_diff EQUAL 0)
  message(FATAL_ERROR "ladder backend diverged from heap (rc=${rc_diff})")
endif()
