// Tests of the Mostefaoui-Raynal consensus layer: safety, liveness in all
// run classes, crash handling and the structural differences from
// Chandra-Toueg (message counts, rounds after a coordinator crash).
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "consensus/ct_consensus.hpp"
#include "consensus/mr_consensus.hpp"
#include "fd/failure_detector.hpp"
#include "fd/heartbeat_fd.hpp"
#include "runtime/cluster.hpp"
#include "runtime/trace.hpp"
#include "stats/summary.hpp"

namespace sanperf::consensus {
namespace {

using fd::HeartbeatFd;
using fd::HeartbeatFdParams;
using fd::StaticFd;
using runtime::Cluster;
using runtime::ClusterConfig;
using runtime::HostId;

ClusterConfig base_config(std::size_t n, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.timers = net::TimerModel::ideal();
  return cfg;
}

struct RunOutcome {
  std::optional<double> first_decide_ms;
  std::int32_t first_rounds = 0;
  std::vector<std::optional<std::int64_t>> decisions;
};

RunOutcome run_static(std::size_t n, int crashed, std::uint64_t seed) {
  Cluster cluster{base_config(n, seed)};
  std::set<HostId> suspected;
  if (crashed >= 0) suspected.insert(static_cast<HostId>(crashed));

  RunOutcome out;
  out.decisions.assign(n, std::nullopt);
  std::optional<des::TimePoint> first;
  for (HostId i = 0; i < static_cast<HostId>(n); ++i) {
    auto& proc = cluster.process(i);
    auto& fd_layer = proc.add_layer<StaticFd>(suspected);
    auto& cons = proc.add_layer<MrConsensus>(fd_layer);
    cons.set_decide_callback([&out, &first, i](const DecisionEvent& ev) {
      out.decisions[i] = ev.value;
      if (!first || ev.at < *first) {
        first = ev.at;
        out.first_rounds = ev.round;
      }
    });
  }
  if (crashed >= 0) cluster.crash_initially(static_cast<HostId>(crashed));

  const des::TimePoint t0 = des::TimePoint::origin() + des::Duration::from_ms(1.0);
  for (HostId i = 0; i < static_cast<HostId>(n); ++i) {
    auto& proc = cluster.process(i);
    if (proc.crashed()) continue;
    cluster.sim().schedule_at(t0, [&proc] {
      proc.layer<MrConsensus>().propose(0, 100 + proc.id());
    });
  }
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(500));
  if (first) out.first_decide_ms = (*first - t0).to_ms();
  return out;
}

TEST(MrConsensusTest, FailureFreeDecidesInOneRound) {
  const auto out = run_static(3, -1, 1);
  ASSERT_TRUE(out.first_decide_ms.has_value());
  EXPECT_EQ(out.first_rounds, 1);
  std::set<std::int64_t> values;
  for (const auto& d : out.decisions) {
    ASSERT_TRUE(d.has_value());
    values.insert(*d);
  }
  EXPECT_EQ(values.size(), 1u);
  // The round-1 coordinator imposes its value.
  EXPECT_EQ(*values.begin(), 100);
}

TEST(MrConsensusTest, CoordinatorCrashCostsExactlyOneRound) {
  // MR has no abort round trip: round 1 fills with bottoms and round 2
  // decides. (CT needs the full nack exchange.)
  const auto out = run_static(5, /*crashed=*/0, 2);
  ASSERT_TRUE(out.first_decide_ms.has_value());
  EXPECT_EQ(out.first_rounds, 2);
  std::set<std::int64_t> values;
  for (std::size_t i = 1; i < 5; ++i) {
    ASSERT_TRUE(out.decisions[i].has_value());
    values.insert(*out.decisions[i]);
  }
  EXPECT_EQ(values.size(), 1u);
  EXPECT_EQ(*values.begin(), 101);  // round 2's coordinator value
}

TEST(MrConsensusTest, ParticipantCrashStillOneRound) {
  const auto out = run_static(5, /*crashed=*/2, 3);
  ASSERT_TRUE(out.first_decide_ms.has_value());
  EXPECT_EQ(out.first_rounds, 1);
}

TEST(MrConsensusTest, ProposeTwiceRejectedAndAccessors) {
  Cluster cluster{base_config(3, 4)};
  for (HostId i = 0; i < 3; ++i) {
    auto& proc = cluster.process(i);
    auto& fd_layer = proc.add_layer<StaticFd>();
    proc.add_layer<MrConsensus>(fd_layer);
  }
  cluster.run_until(des::TimePoint::origin());
  auto& cons = cluster.process(0).layer<MrConsensus>();
  EXPECT_FALSE(cons.has_decided(0));
  EXPECT_THROW((void)cons.decision(0), std::logic_error);
  cons.propose(0, 7);
  EXPECT_THROW(cons.propose(0, 8), std::logic_error);
}

// Safety sweep mirroring the CT one.
struct SafetyParam {
  std::size_t n;
  int crashed;
  std::uint64_t seed;
};

class MrSafetyTest : public ::testing::TestWithParam<SafetyParam> {};

TEST_P(MrSafetyTest, AgreementValidityTermination) {
  const auto p = GetParam();
  const auto out = run_static(p.n, p.crashed, p.seed);
  ASSERT_TRUE(out.first_decide_ms.has_value());
  std::set<std::int64_t> values;
  for (std::size_t i = 0; i < p.n; ++i) {
    if (static_cast<int>(i) == p.crashed) continue;
    ASSERT_TRUE(out.decisions[i].has_value()) << "process " << i;
    values.insert(*out.decisions[i]);
  }
  EXPECT_EQ(values.size(), 1u);
  EXPECT_GE(*values.begin(), 100);
  EXPECT_LT(*values.begin(), 100 + static_cast<std::int64_t>(p.n));
}

std::vector<SafetyParam> safety_params() {
  std::vector<SafetyParam> ps;
  for (const std::size_t n : {3u, 5u, 7u}) {
    for (const int crashed : {-1, 0, 1}) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) ps.push_back({n, crashed, seed * 7});
    }
  }
  return ps;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MrSafetyTest, ::testing::ValuesIn(safety_params()),
                         [](const auto& info) {
                           const auto& p = info.param;
                           return "n" + std::to_string(p.n) + "_crash" +
                                  std::to_string(p.crashed + 1) + "_seed" +
                                  std::to_string(p.seed);
                         });

TEST(MrConsensusTest, QuadraticMessageComplexity) {
  // MR's all-to-all phase: per failure-free execution roughly n(n-1) AUX
  // unicasts vs CT's ~3n messages.
  for (const std::size_t n : {3u, 5u}) {
    Cluster cluster{base_config(n, 6)};
    std::vector<runtime::TraceLayer*> traces;
    for (HostId i = 0; i < static_cast<HostId>(n); ++i) {
      auto& proc = cluster.process(i);
      traces.push_back(&proc.add_layer<runtime::TraceLayer>());
      auto& fd_layer = proc.add_layer<StaticFd>();
      proc.add_layer<MrConsensus>(fd_layer);
    }
    cluster.run_until(des::TimePoint::origin());
    for (HostId i = 0; i < static_cast<HostId>(n); ++i) {
      cluster.process(i).layer<MrConsensus>().propose(0, i);
    }
    cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(50));
    std::uint64_t aux_received = 0;
    for (const auto* t : traces) aux_received += t->count(runtime::MsgKind::kAux);
    // Round 1 alone: n broadcasts of n-1 unicasts each.
    EXPECT_GE(aux_received, static_cast<std::uint64_t>(n * (n - 1)));
  }
}

TEST(MrConsensusTest, StatsCountBottoms) {
  const auto n = 5u;
  Cluster cluster{base_config(n, 8)};
  std::set<HostId> suspected{0};
  for (HostId i = 0; i < static_cast<HostId>(n); ++i) {
    auto& proc = cluster.process(i);
    auto& fd_layer = proc.add_layer<StaticFd>(suspected);
    proc.add_layer<MrConsensus>(fd_layer);
  }
  cluster.crash_initially(0);
  cluster.run_until(des::TimePoint::origin());
  for (HostId i = 1; i < static_cast<HostId>(n); ++i) {
    cluster.process(i).layer<MrConsensus>().propose(0, i);
  }
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(100));
  for (HostId i = 1; i < static_cast<HostId>(n); ++i) {
    const auto& s = cluster.process(i).layer<MrConsensus>().stats();
    EXPECT_GE(s.bottom_aux, 1u);  // round 1's coordinator was dead
    EXPECT_GE(s.rounds_entered, 2u);
  }
}

TEST(MrConsensusClass3Test, DecidesAndAgreesUnderWrongSuspicions) {
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 99;
  cfg.timers = net::TimerModel::defaults();
  Cluster cluster{cfg};
  const auto fd_params = HeartbeatFdParams::from_timeout_ms(3.0);
  for (HostId i = 0; i < 3; ++i) {
    auto& proc = cluster.process(i);
    auto& hb = proc.add_layer<HeartbeatFd>(fd_params);
    proc.add_layer<MrConsensus>(hb);
  }
  int decided = 0;
  std::set<std::int64_t> values;
  for (HostId i = 0; i < 3; ++i) {
    cluster.process(i).layer<MrConsensus>().set_decide_callback(
        [&](const DecisionEvent& ev) {
          ++decided;
          values.insert(ev.value);
        });
  }
  const auto t0 = des::TimePoint::origin() + des::Duration::from_ms(30);
  for (HostId i = 0; i < 3; ++i) {
    auto& proc = cluster.process(i);
    cluster.sim().schedule_at(t0, [&proc] {
      proc.layer<MrConsensus>().propose(0, 200 + proc.id());
    });
  }
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(3000));
  EXPECT_EQ(decided, 3);
  EXPECT_EQ(values.size(), 1u);
}

TEST(MrVsCtTest, MrFasterFailureFreeAtSmallN) {
  // MR needs two communication steps, CT three: on an uncontended network
  // MR decides first for n = 3.
  auto run_ct = [](std::uint64_t seed) {
    Cluster cluster{base_config(3, seed)};
    std::optional<des::TimePoint> first;
    for (HostId i = 0; i < 3; ++i) {
      auto& proc = cluster.process(i);
      auto& fd_layer = proc.add_layer<StaticFd>();
      auto& cons = proc.add_layer<CtConsensus>(fd_layer);
      cons.set_decide_callback([&first](const DecisionEvent& ev) {
        if (!first || ev.at < *first) first = ev.at;
      });
    }
    const auto t0 = des::TimePoint::origin() + des::Duration::from_ms(1);
    for (HostId i = 0; i < 3; ++i) {
      auto& proc = cluster.process(i);
      cluster.sim().schedule_at(t0, [&proc] { proc.layer<CtConsensus>().propose(0, 1); });
    }
    cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(100));
    return (*first - t0).to_ms();
  };

  stats::SummaryStats ct, mr;
  for (std::uint64_t s = 1; s <= 40; ++s) {
    ct.add(run_ct(s));
    const auto out = run_static(3, -1, s);
    mr.add(*out.first_decide_ms);
  }
  EXPECT_LT(mr.mean(), ct.mean());
}

TEST(MrVsCtTest, MessageComplexityLinearVsQuadratic) {
  // The structural difference: per failure-free execution CT sends
  // Theta(n) messages (ests + proposal + replies), MR Theta(n^2) (the
  // all-to-all aux phase). Count actual frames on the network.
  auto frames_for = [](bool use_mr, std::size_t n, std::uint64_t seed) {
    Cluster cluster{base_config(n, seed)};
    std::optional<des::TimePoint> first;
    for (HostId i = 0; i < static_cast<HostId>(n); ++i) {
      auto& proc = cluster.process(i);
      auto& fd_layer = proc.add_layer<StaticFd>();
      if (use_mr) {
        proc.add_layer<MrConsensus>(fd_layer).set_decide_callback(
            [&first](const DecisionEvent& ev) {
              if (!first || ev.at < *first) first = ev.at;
            });
      } else {
        proc.add_layer<CtConsensus>(fd_layer).set_decide_callback(
            [&first](const DecisionEvent& ev) {
              if (!first || ev.at < *first) first = ev.at;
            });
      }
    }
    const auto t0 = des::TimePoint::origin() + des::Duration::from_ms(1);
    for (HostId i = 0; i < static_cast<HostId>(n); ++i) {
      auto& proc = cluster.process(i);
      cluster.sim().schedule_at(t0, [&proc, use_mr] {
        if (use_mr) {
          proc.layer<MrConsensus>().propose(0, 1);
        } else {
          proc.layer<CtConsensus>().propose(0, 1);
        }
      });
    }
    cluster.run_until([&] { return first.has_value(); },
                      des::TimePoint::origin() + des::Duration::from_ms(100));
    return cluster.network().frames_sent();
  };

  for (const std::size_t n : {5u, 7u}) {
    const auto ct_frames = frames_for(false, n, 11);
    const auto mr_frames = frames_for(true, n, 11);
    EXPECT_GT(mr_frames, ct_frames) << "n=" << n;
    // At n=7 the quadratic aux phase dominates clearly.
    if (n == 7) {
      EXPECT_GT(mr_frames, ct_frames * 3 / 2);
    }
  }
}

TEST(MrVsCtTest, BothRecoverFromInitialCoordinatorCrashInRoundTwo) {
  // MR pays one round of bottoms (a full majority exchange); CT's
  // entry-nack advance is cheap but its second round has three steps.
  // Neither dominates structurally -- both must simply finish in round 2.
  const auto mr = run_static(5, 0, 12);
  ASSERT_TRUE(mr.first_decide_ms.has_value());
  EXPECT_EQ(mr.first_rounds, 2);
  EXPECT_LT(*mr.first_decide_ms, 5.0);
}

}  // namespace
}  // namespace sanperf::consensus
