// Tests of the Mostefaoui-Raynal SAN model, including cross-validation
// against the MR protocol implementation on the emulator (the same
// model-vs-measurement methodology the paper applies to Chandra-Toueg).
#include <gtest/gtest.h>

#include "core/extensions.hpp"
#include "core/replication.hpp"
#include "san/study.hpp"
#include "sanmodels/consensus_model.hpp"
#include "sanmodels/mr_model.hpp"

namespace sanperf::sanmodels {
namespace {

// Study loops fan out over the shared replication pool (SANPERF_THREADS);
// results are bit-identical to TransientStudy::run at any thread count, so
// this only shrinks the suite's wall clock.
san::StudyResult run_study(const san::TransientStudy& study, std::size_t replications,
                           std::uint64_t seed) {
  return core::run_study(core::default_runner(), study, replications, seed);
}

TEST(MrSanTest, Class1DecidesOnce) {
  MrSanConfig cfg;
  cfg.n = 3;
  cfg.transport = TransportParams::nominal(3);
  const auto built = build_mr_san(cfg);
  san::SanSimulator sim{built.model, des::RandomEngine{1}};
  sim.set_stop_predicate(built.stop_predicate());
  const auto res = sim.run(des::Duration::seconds(5));
  EXPECT_EQ(res.reason, san::StopReason::kPredicate);
  // Two communication steps: faster than a CT round but non-trivial.
  EXPECT_GT(sim.now().to_ms(), 0.15);
  EXPECT_LT(sim.now().to_ms(), 2.0);
}

TEST(MrSanTest, LatencyGrowsWithN) {
  double prev = 0;
  for (const std::size_t n : {3u, 5u, 7u}) {
    MrSanConfig cfg;
    cfg.n = n;
    cfg.transport = TransportParams::nominal(n);
    const auto built = build_mr_san(cfg);
    san::TransientStudy study{built.model, built.stop_predicate()};
    const auto result = run_study(study, 200, 7 + n);
    EXPECT_EQ(result.dropped, 0u) << "n=" << n;
    EXPECT_GT(result.summary.mean(), prev);
    prev = result.summary.mean();
  }
}

TEST(MrSanTest, CoordinatorCrashCostsOneRound) {
  MrSanConfig base;
  base.n = 5;
  base.transport = TransportParams::nominal(5);
  const auto ok_model = build_mr_san(base);
  MrSanConfig crash = base;
  crash.initially_crashed = 0;
  const auto crash_model = build_mr_san(crash);

  san::TransientStudy ok_study{ok_model.model, ok_model.stop_predicate()};
  san::TransientStudy crash_study{crash_model.model, crash_model.stop_predicate()};
  const auto ok = run_study(ok_study, 400, 11);
  const auto bad = run_study(crash_study, 400, 11);
  ASSERT_EQ(ok.dropped, 0u);
  ASSERT_EQ(bad.dropped, 0u);
  // One wasted all-to-all bottoms round plus its contention: roughly a
  // factor 2-4 (the emulator's ext_algorithms comparison shows the same
  // expensive MR crash recovery).
  EXPECT_GT(bad.summary.mean(), ok.summary.mean() * 1.3);
  EXPECT_LT(bad.summary.mean(), ok.summary.mean() * 4.0);
}

TEST(MrSanTest, FasterThanCtFailureFreeInTheModelToo) {
  // The two-step vs three-step gap must show inside the SAN framework,
  // mirroring the emulator comparison of ext_algorithms.
  for (const std::size_t n : {3u, 5u}) {
    MrSanConfig mr_cfg;
    mr_cfg.n = n;
    mr_cfg.transport = TransportParams::nominal(n);
    const auto mr_model = build_mr_san(mr_cfg);
    ConsensusSanConfig ct_cfg;
    ct_cfg.n = n;
    ct_cfg.transport = TransportParams::nominal(n);
    const auto ct_model = build_consensus_san(ct_cfg);

    san::TransientStudy mr_study{mr_model.model, mr_model.stop_predicate()};
    san::TransientStudy ct_study{ct_model.model, ct_model.stop_predicate()};
    const auto mr = run_study(mr_study, 400, 13);
    const auto ct = run_study(ct_study, 400, 13);
    EXPECT_LT(mr.summary.mean(), ct.summary.mean()) << "n=" << n;
  }
}

TEST(MrSanTest, Class3BadQosSlowsItDown) {
  MrSanConfig cfg;
  cfg.n = 3;
  cfg.transport = TransportParams::nominal(3);
  const auto good = build_mr_san(cfg);

  fd::QosEstimate qos;
  qos.t_mr_ms = 5.0;
  qos.t_m_ms = 2.0;
  cfg.qos_fd = fd::AbstractFdParams::from_qos(qos, fd::AbstractFdParams::Sojourn::kExponential);
  const auto bad = build_mr_san(cfg);

  san::TransientStudy good_study{good.model, good.stop_predicate()};
  san::TransientStudy bad_study{bad.model, bad.stop_predicate()};
  bad_study.set_time_limit(des::Duration::seconds(10));
  const auto g = run_study(good_study, 300, 17);
  const auto b = run_study(bad_study, 300, 17);
  EXPECT_GT(b.summary.mean(), g.summary.mean() * 1.2);
}

TEST(MrSanTest, ModelTracksEmulatorClass1) {
  // Model-vs-implementation validation for MR, the same exercise the paper
  // runs for CT: nominal transport against the emulator's measurement.
  for (const std::size_t n : {3u, 5u}) {
    MrSanConfig cfg;
    cfg.n = n;
    cfg.transport = TransportParams::nominal(n);
    const auto built = build_mr_san(cfg);
    san::TransientStudy study{built.model, built.stop_predicate()};
    const auto sim = run_study(study, 400, 19);

    const auto meas = core::measure_latency_with(core::Algorithm::kMostefaouiRaynal, n,
                                                 net::NetworkParams::defaults(),
                                                 net::TimerModel::ideal(), -1, 400, 21);
    const double ratio = sim.summary.mean() / meas.summary().mean();
    EXPECT_GT(ratio, 0.6) << "n=" << n;
    EXPECT_LT(ratio, 1.6) << "n=" << n;
  }
}

TEST(MrSanTest, RejectsBadConfig) {
  MrSanConfig cfg;
  cfg.n = 1;
  EXPECT_THROW(build_mr_san(cfg), std::invalid_argument);
  cfg.n = 3;
  cfg.initially_crashed = 5;
  EXPECT_THROW(build_mr_san(cfg), std::invalid_argument);
}

TEST(MrSanTest, DeterministicGivenSeed) {
  MrSanConfig cfg;
  cfg.n = 3;
  cfg.transport = TransportParams::nominal(3);
  const auto built = build_mr_san(cfg);
  san::TransientStudy study{built.model, built.stop_predicate()};
  const auto a = run_study(study, 50, 23);
  const auto b = run_study(study, 50, 23);
  EXPECT_EQ(a.rewards, b.rewards);
}

}  // namespace
}  // namespace sanperf::sanmodels
