// Tests of the contention network: FIFO resource servers, end-to-end delay
// decomposition, contention effects, crash handling and the timer model.
#include <gtest/gtest.h>

#include <algorithm>
#include <any>
#include <vector>

#include "des/simulator.hpp"
#include "net/jitter.hpp"
#include "net/network.hpp"
#include "net/params.hpp"

namespace sanperf::net {
namespace {

TEST(FifoServerTest, ServesJobsInOrderExclusively) {
  des::Simulator sim;
  FifoServer server{sim};
  std::vector<int> done;
  std::vector<double> times;
  for (int i = 0; i < 3; ++i) {
    server.submit(des::Duration::from_ms(2), [&, i] {
      done.push_back(i);
      times.push_back(sim.now().to_ms());
    });
  }
  EXPECT_EQ(server.queue_length(), 2u);
  sim.run();
  EXPECT_EQ(done, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(times, (std::vector<double>{2.0, 4.0, 6.0}));
  EXPECT_EQ(server.jobs_served(), 3u);
  EXPECT_DOUBLE_EQ(server.busy_time().to_ms(), 6.0);
}

TEST(FifoServerTest, IdleServerStartsImmediately) {
  des::Simulator sim;
  FifoServer server{sim};
  double when = -1;
  sim.schedule(des::Duration::from_ms(5), [&] {
    server.submit(des::Duration::from_ms(1), [&] { when = sim.now().to_ms(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(when, 6.0);
}

TEST(FifoServerTest, DrainDropsQueuedJobs) {
  des::Simulator sim;
  FifoServer server{sim};
  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    server.submit(des::Duration::from_ms(1), [&] { ++completions; });
  }
  server.drain(/*drop_in_service=*/false);
  sim.run();
  EXPECT_EQ(completions, 1);  // only the in-service job completes
}

TEST(FifoServerTest, DrainCanSuppressInServiceJob) {
  des::Simulator sim;
  FifoServer server{sim};
  int completions = 0;
  server.submit(des::Duration::from_ms(1), [&] { ++completions; });
  server.drain(/*drop_in_service=*/true);
  sim.run();
  EXPECT_EQ(completions, 0);
  EXPECT_FALSE(server.busy());
}

NetworkParams fixed_delay_params() {
  NetworkParams p;
  p.send_cpu_ms = 0.025;
  p.recv_cpu_ms = 0.025;
  p.wire_service = {1.0, 0.09, 0.09, 0.0, 0.0};  // degenerate: always 0.09
  p.pipeline_latency = {1.0, 0.0, 0.0, 0.0, 0.0};  // none: exact arithmetic
  return p;
}

TEST(ContentionNetworkTest, UncontendedDelayIsSumOfStages) {
  des::Simulator sim;
  ContentionNetwork netw{sim, des::RandomEngine{1}, fixed_delay_params(), 2};
  double delay = -1;
  netw.set_deliver([&](const Packet& pkt) { delay = (sim.now() - pkt.sent_at).to_ms(); });
  netw.send(0, 1, std::any{});
  sim.run();
  EXPECT_NEAR(delay, 0.025 + 0.09 + 0.025, 1e-9);
  EXPECT_EQ(netw.frames_sent(), 1u);
}

TEST(ContentionNetworkTest, DefaultsMatchPaperUnicastDelay) {
  des::Simulator sim;
  ContentionNetwork netw{sim, des::RandomEngine{2}, NetworkParams::defaults(), 2};
  std::vector<double> delays;
  netw.set_deliver([&](const Packet& pkt) { delays.push_back((sim.now() - pkt.sent_at).to_ms()); });
  // Isolated probes.
  for (int i = 0; i < 2000; ++i) {
    sim.schedule_at(des::TimePoint::origin() + des::Duration::from_ms(i * 1.0),
                    [&netw] { netw.send(0, 1, std::any{}); });
  }
  sim.run();
  ASSERT_EQ(delays.size(), 2000u);
  double sum = 0;
  for (const double d : delays) {
    EXPECT_GE(d, 0.0999);
    EXPECT_LE(d, 0.3581);
    sum += d;
  }
  // Close to the paper fit mean 0.8 * 0.115 + 0.2 * 0.2475 = 0.1415 ms.
  EXPECT_NEAR(sum / 2000.0, 0.1413, 0.005);
}

TEST(ContentionNetworkTest, SharedMediumSerialisesBurst) {
  des::Simulator sim;
  ContentionNetwork netw{sim, des::RandomEngine{3}, fixed_delay_params(), 4};
  std::vector<double> arrivals;
  netw.set_deliver([&](const Packet&) { arrivals.push_back(sim.now().to_ms()); });
  // Three different senders to three different receivers at t = 0: only the
  // medium is shared, so arrivals must be spaced by the frame time.
  netw.send(0, 1, std::any{});
  netw.send(1, 2, std::any{});
  netw.send(2, 3, std::any{});
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR(arrivals[0], 0.140, 1e-9);
  EXPECT_NEAR(arrivals[1], 0.230, 1e-9);  // +0.09 medium serialisation
  EXPECT_NEAR(arrivals[2], 0.320, 1e-9);
}

TEST(ContentionNetworkTest, SenderCpuSerialisesItsOwnMessages) {
  des::Simulator sim;
  ContentionNetwork netw{sim, des::RandomEngine{4}, fixed_delay_params(), 3};
  std::vector<double> arrivals;
  netw.set_deliver([&](const Packet&) { arrivals.push_back(sim.now().to_ms()); });
  netw.send(0, 1, std::any{});
  netw.send(0, 2, std::any{});
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second message waits 0.025 for the sender CPU, then 0.065 more for the
  // medium (which frees at 0.115): arrives at 0.115 + 0.09 + 0.025 = 0.230.
  EXPECT_NEAR(arrivals[0], 0.140, 1e-9);
  EXPECT_NEAR(arrivals[1], 0.230, 1e-9);
}

TEST(ContentionNetworkTest, ReceiverCpuSerialisesDeliveries) {
  des::Simulator sim;
  ContentionNetwork netw{sim, des::RandomEngine{5}, fixed_delay_params(), 3};
  std::vector<double> arrivals;
  netw.set_deliver([&](const Packet&) { arrivals.push_back(sim.now().to_ms()); });
  netw.send(0, 2, std::any{});
  netw.send(1, 2, std::any{});
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.140, 1e-9);
  // Frame 2 leaves the medium at 0.205 and the receiver is free by then,
  // so only the medium serialisation shows: 0.205 + 0.025 = 0.230.
  EXPECT_NEAR(arrivals[1], 0.230, 1e-9);
}

TEST(ContentionNetworkTest, FramesToCrashedHostOccupyMediumButDrop) {
  des::Simulator sim;
  ContentionNetwork netw{sim, des::RandomEngine{6}, fixed_delay_params(), 3};
  std::vector<double> arrivals;
  netw.set_deliver([&](const Packet&) { arrivals.push_back(sim.now().to_ms()); });
  netw.host_down(1);
  netw.send(0, 1, std::any{});  // dropped after medium
  netw.send(0, 2, std::any{});  // delivered, delayed by the dead frame
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_NEAR(arrivals[0], 0.230, 1e-9);  // dead frame still serialised first
  EXPECT_EQ(netw.frames_dropped(), 1u);
}

TEST(ContentionNetworkTest, CrashedHostSendsNothing) {
  des::Simulator sim;
  ContentionNetwork netw{sim, des::RandomEngine{7}, fixed_delay_params(), 2};
  int delivered = 0;
  netw.set_deliver([&](const Packet&) { ++delivered; });
  netw.host_down(0);
  netw.send(0, 1, std::any{});
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(netw.frames_sent(), 0u);
}

TEST(ContentionNetworkTest, RejectsBadEndpoints) {
  des::Simulator sim;
  ContentionNetwork netw{sim, des::RandomEngine{8}, fixed_delay_params(), 2};
  EXPECT_THROW(netw.send(0, 0, std::any{}), std::invalid_argument);
  EXPECT_THROW(netw.send(0, 5, std::any{}), std::invalid_argument);
  EXPECT_THROW(netw.host_down(9), std::invalid_argument);
  EXPECT_THROW((ContentionNetwork{sim, des::RandomEngine{9}, fixed_delay_params(), 1}),
               std::invalid_argument);
}

TEST(TimerModelTest, IdealTimersAreExact) {
  des::RandomEngine rng{10};
  const TimerModel tm = TimerModel::ideal();
  const auto nominal = des::TimePoint::origin() + des::Duration::from_ms(3.7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(quantize_timer(tm, nominal, rng), nominal);
  }
}

TEST(TimerModelTest, QuantisationRoundsUpToTick) {
  des::RandomEngine rng{11};
  TimerModel tm = TimerModel::ideal();
  tm.tick_ms = 10.0;
  const auto nominal = des::TimePoint::origin() + des::Duration::from_ms(3.7);
  const auto t = quantize_timer(tm, nominal, rng);
  EXPECT_EQ(t, des::TimePoint::origin() + des::Duration::from_ms(10.0));
  // Already on a tick: unchanged.
  const auto on_tick = des::TimePoint::origin() + des::Duration::from_ms(20.0);
  EXPECT_EQ(quantize_timer(tm, on_tick, rng), on_tick);
}

TEST(TimerModelTest, NeverFiresEarly) {
  des::RandomEngine rng{12};
  const TimerModel tm = TimerModel::defaults();
  for (int i = 0; i < 5000; ++i) {
    const auto nominal =
        des::TimePoint::origin() + des::Duration::from_ms(rng.uniform(0.0, 100.0));
    EXPECT_GE(quantize_timer(tm, nominal, rng), nominal);
  }
}

TEST(TimerModelTest, StallFrequenciesMatchConfig) {
  des::RandomEngine rng{13};
  TimerModel tm = TimerModel::ideal();
  tm.p_minor_stall = 0.2;
  tm.p_major_stall = 0.05;
  tm.p_huge_stall = 0.01;
  int stalled = 0, huge = 0;
  const int k = 200000;
  double max_stall = 0;
  for (int i = 0; i < k; ++i) {
    const double s = sample_stall(tm, rng).to_ms();
    if (s > 0.0) ++stalled;
    if (s >= 12.0) ++huge;
    max_stall = std::max(max_stall, s);
  }
  // The minor/major ranges overlap; the total stall frequency and the
  // heavy tail are the checkable quantities.
  EXPECT_NEAR(stalled / static_cast<double>(k), 0.26, 0.01);
  EXPECT_NEAR(huge / static_cast<double>(k), 0.01, 0.002);
  EXPECT_LE(max_stall, 45.0);
}

TEST(TimerModelTest, DefaultExpectedUnicastMatchesFitMean) {
  const NetworkParams p = NetworkParams::defaults();
  // send 0.025 + wire 0.0915 + pipeline 0 + recv 0.025: the paper's fit mean.
  EXPECT_NEAR(p.expected_unicast_e2e_ms(), 0.025 + 0.0915 + 0.025, 1e-6);
}

// --------------------------------------------------------------------------
// HubMedium arbitration
// --------------------------------------------------------------------------

TEST(HubMediumTest, PerHostQueuesStayFifo) {
  des::Simulator sim;
  HubMedium hub{sim, des::RandomEngine{20}, 3};
  std::vector<int> order;
  // Two frames from host 0 and two from host 1: arbitration between hosts
  // is random, but each host's own frames must complete in order.
  hub.submit(0, des::Duration::from_ms(1), [&] { order.push_back(1); });
  hub.submit(0, des::Duration::from_ms(1), [&] { order.push_back(2); });
  hub.submit(1, des::Duration::from_ms(1), [&] { order.push_back(11); });
  hub.submit(1, des::Duration::from_ms(1), [&] { order.push_back(12); });
  sim.run();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](int v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(1), pos(2));
  EXPECT_LT(pos(11), pos(12));
  EXPECT_EQ(hub.frames_served(), 4u);
  EXPECT_DOUBLE_EQ(hub.busy_time().to_ms(), 4.0);
}

TEST(HubMediumTest, BacklogServedToCompletion) {
  des::Simulator sim;
  HubMedium hub{sim, des::RandomEngine{21}, 2};
  int done = 0;
  const int frames = 2000;
  for (int i = 0; i < frames; ++i) {
    hub.submit(0, des::Duration::from_ms(0.01), [&] { ++done; });
    hub.submit(1, des::Duration::from_ms(0.01), [&] { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 2 * frames);
  EXPECT_EQ(hub.frames_served(), static_cast<std::uint64_t>(2 * frames));
  EXPECT_EQ(hub.backlog(), 0u);
  EXPECT_FALSE(hub.busy());
}

TEST(HubMediumTest, IdleHubStartsImmediately) {
  des::Simulator sim;
  HubMedium hub{sim, des::RandomEngine{22}, 2};
  double when = -1;
  sim.schedule(des::Duration::from_ms(3), [&] {
    hub.submit(1, des::Duration::from_ms(2), [&] { when = sim.now().to_ms(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(when, 5.0);
  EXPECT_FALSE(hub.busy());
  EXPECT_EQ(hub.backlog(), 0u);
}

// --------------------------------------------------------------------------
// Dead-peer absorption and frame classes
// --------------------------------------------------------------------------

TEST(DeadPeerAbsorptionTest, OnlyFirstProtocolFrameReachesWire) {
  des::Simulator sim;
  NetworkParams params = fixed_delay_params();
  ContentionNetwork netw{sim, des::RandomEngine{23}, params, 2};
  netw.host_down(1);
  for (int i = 0; i < 5; ++i) netw.send(0, 1, std::any{});
  sim.run();
  // One frame on the wire (then TCP backoff absorbs), all five dropped.
  EXPECT_EQ(netw.medium().frames_served(), 1u);
  EXPECT_EQ(netw.frames_dropped(), 5u);
}

TEST(DeadPeerAbsorptionTest, PerPairBookkeeping) {
  des::Simulator sim;
  ContentionNetwork netw{sim, des::RandomEngine{24}, fixed_delay_params(), 3};
  netw.host_down(2);
  netw.send(0, 2, std::any{});  // pair (0,2): first frame -> wire
  netw.send(1, 2, std::any{});  // pair (1,2): first frame -> wire
  netw.send(0, 2, std::any{});  // absorbed
  sim.run();
  EXPECT_EQ(netw.medium().frames_served(), 2u);
}

TEST(DeadPeerAbsorptionTest, CanBeDisabled) {
  des::Simulator sim;
  NetworkParams params = fixed_delay_params();
  params.dead_peer_absorption = false;
  ContentionNetwork netw{sim, des::RandomEngine{25}, params, 2};
  netw.host_down(1);
  for (int i = 0; i < 4; ++i) netw.send(0, 1, std::any{});
  sim.run();
  EXPECT_EQ(netw.medium().frames_served(), 4u);  // every frame on the wire
}

TEST(FrameClassTest, SmallFramesUseRawWireTime) {
  des::Simulator sim;
  NetworkParams params = fixed_delay_params();
  params.small_wire_service = {1.0, 0.005, 0.005, 0.0, 0.0};
  ContentionNetwork netw{sim, des::RandomEngine{26}, params, 2};
  std::vector<double> delays;
  netw.set_deliver([&](const Packet& pkt) { delays.push_back((sim.now() - pkt.sent_at).to_ms()); });
  netw.send(0, 1, std::any{}, ContentionNetwork::FrameClass::kProtocol);
  sim.run();
  netw.send(0, 1, std::any{}, ContentionNetwork::FrameClass::kSmall);
  sim.run();
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_NEAR(delays[0], 0.025 + 0.09 + 0.025, 1e-9);
  EXPECT_NEAR(delays[1], 0.025 + 0.005 + 0.025, 1e-9);
}

TEST(FrameClassTest, SmallFramesToDeadHostAlwaysEmitted) {
  // Heartbeats are UDP: no connection state, every datagram hits the wire.
  des::Simulator sim;
  ContentionNetwork netw{sim, des::RandomEngine{27}, fixed_delay_params(), 2};
  netw.host_down(1);
  for (int i = 0; i < 3; ++i) {
    netw.send(0, 1, std::any{}, ContentionNetwork::FrameClass::kSmall);
  }
  sim.run();
  EXPECT_EQ(netw.medium().frames_served(), 3u);
}

// --------------------------------------------------------------------------
// Warm restart and fault-injection hooks
// --------------------------------------------------------------------------

TEST(HostRestartTest, RearmsReceiverCpuAndResetsDeadPairState) {
  // Regression: before host_restart existed, protocol frames towards a
  // once-crashed host were absorbed by the stale dead-pair state forever,
  // and nothing could re-enable the receiver CPU.
  des::Simulator sim;
  ContentionNetwork netw{sim, des::RandomEngine{28}, fixed_delay_params(), 2};
  int delivered = 0;
  netw.set_deliver([&](const Packet&) { ++delivered; });

  netw.host_down(1);
  for (int i = 0; i < 3; ++i) netw.send(0, 1, std::any{});  // 1 wire + 2 absorbed
  sim.run();
  EXPECT_EQ(delivered, 0);
  const auto cpu_jobs_down = netw.cpu(1).jobs_served();

  netw.host_restart(1);
  EXPECT_TRUE(netw.host_up(1));
  for (int i = 0; i < 2; ++i) netw.send(0, 1, std::any{});
  sim.run();
  EXPECT_EQ(delivered, 2);  // both post-recovery frames reach the process
  EXPECT_EQ(netw.cpu(1).jobs_served(), cpu_jobs_down + 2);  // CPU serves again
  EXPECT_EQ(netw.medium().frames_served(), 3u);  // 1 dead + 2 live on the wire
}

TEST(HostRestartTest, CrashWhileReceiverBusySuppressesOnlyThatJob) {
  // The job in service when the host crashes still occupies the CPU but its
  // delivery is suppressed; a job submitted after the restart completes.
  des::Simulator sim;
  ContentionNetwork netw{sim, des::RandomEngine{29}, fixed_delay_params(), 2};
  int delivered = 0;
  netw.set_deliver([&](const Packet&) { ++delivered; });
  netw.send(0, 1, std::any{});
  // Crash host 1 while its receive is in service (delivery at 0.140 ms).
  sim.schedule(des::Duration::from_ms(0.130), [&] { netw.host_down(1); });
  sim.schedule(des::Duration::from_ms(0.135), [&] { netw.host_restart(1); });
  sim.schedule(des::Duration::from_ms(0.200), [&] { netw.send(0, 1, std::any{}); });
  sim.run();
  EXPECT_EQ(delivered, 1);  // in-service job dropped, post-restart one lands
}

TEST(ServiceScaleTest, CpuScaleStretchesEndToEndDelay) {
  des::Simulator sim;
  ContentionNetwork netw{sim, des::RandomEngine{30}, fixed_delay_params(), 2};
  std::vector<double> delays;
  netw.set_deliver([&](const Packet& pkt) { delays.push_back((sim.now() - pkt.sent_at).to_ms()); });
  netw.send(0, 1, std::any{});
  sim.run();
  netw.set_cpu_scale(0, 4.0);  // sender side only
  netw.send(0, 1, std::any{});
  sim.run();
  netw.set_cpu_scale(0, 1.0);
  netw.send(0, 1, std::any{});
  sim.run();
  ASSERT_EQ(delays.size(), 3u);
  EXPECT_NEAR(delays[0], 0.025 + 0.09 + 0.025, 1e-9);
  EXPECT_NEAR(delays[1], 0.100 + 0.09 + 0.025, 1e-9);  // 4x send CPU
  EXPECT_NEAR(delays[2], delays[0], 1e-12);  // scale 1.0 restores the bits
}

TEST(ServiceScaleTest, PipelineScaleStretchesStackTraversal) {
  des::Simulator sim;
  NetworkParams params = fixed_delay_params();
  params.pipeline_latency = {1.0, 0.2, 0.2, 0.0, 0.0};
  ContentionNetwork netw{sim, des::RandomEngine{31}, params, 2};
  std::vector<double> delays;
  netw.set_deliver([&](const Packet& pkt) { delays.push_back((sim.now() - pkt.sent_at).to_ms()); });
  netw.send(0, 1, std::any{});
  sim.run();
  netw.set_pipeline_scale(3.0);
  netw.send(0, 1, std::any{});
  sim.run();
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_NEAR(delays[1] - delays[0], 2 * 0.2, 1e-9);
  EXPECT_THROW(netw.set_pipeline_scale(0.0), std::invalid_argument);
  EXPECT_THROW(netw.set_cpu_scale(0, -1.0), std::invalid_argument);
}

TEST(FrameFilterTest, DropAndDuplicateAtReceiverEdge) {
  des::Simulator sim;
  ContentionNetwork netw{sim, des::RandomEngine{32}, fixed_delay_params(), 3};
  int delivered = 0;
  netw.set_deliver([&](const Packet&) { ++delivered; });
  // Drop everything to host 1, duplicate everything to host 2.
  netw.set_frame_filter([](const Packet& pkt) {
    if (pkt.dst == 1) return ContentionNetwork::FrameFate::kDrop;
    return ContentionNetwork::FrameFate::kDuplicate;
  });
  netw.send(0, 1, std::any{});
  netw.send(0, 2, std::any{});
  sim.run();
  EXPECT_EQ(delivered, 2);  // the duplicated frame lands twice
  EXPECT_EQ(netw.frames_filtered(), 1u);
  EXPECT_EQ(netw.frames_duplicated(), 1u);
  EXPECT_EQ(netw.medium().frames_served(), 2u);  // dropped frame paid the wire
}

}  // namespace
}  // namespace sanperf::net
