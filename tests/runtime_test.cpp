// Tests of the process runtime: layer dispatch, timers, broadcast order,
// crash-stop semantics and cluster wiring.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/cluster.hpp"
#include "runtime/message.hpp"
#include "runtime/process.hpp"

namespace sanperf::runtime {
namespace {

ClusterConfig test_config(std::size_t n, std::uint64_t seed = 1) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.timers = net::TimerModel::ideal();
  // Degenerate frame time for deterministic arithmetic in tests.
  cfg.network.wire_service = {1.0, 0.09, 0.09, 0.0, 0.0};
  cfg.network.pipeline_latency = {1.0, 0.0, 0.0, 0.0, 0.0};
  return cfg;
}

/// Records everything it sees; optionally echoes PING with PONG.
class RecorderLayer : public Layer {
 public:
  void on_message(const Message& m) override {
    received.push_back(m);
    if (m.kind == MsgKind::kPing && echo) {
      Message pong;
      pong.kind = MsgKind::kPong;
      pong.probe_id = m.probe_id;
      process().send(pong, m.from);
    }
  }
  void on_start() override { started = true; }
  void on_crash() override { crashed = true; }

  std::vector<Message> received;
  bool started = false;
  bool crashed = false;
  bool echo = false;
};

TEST(MessageTest, KindNamesAndFormat) {
  EXPECT_STREQ(to_string(MsgKind::kHeartbeat), "HEARTBEAT");
  EXPECT_STREQ(to_string(MsgKind::kDecide), "DECIDE");
  Message m;
  m.kind = MsgKind::kEstimate;
  m.from = 1;
  m.to = 2;
  m.round = 3;
  EXPECT_NE(m.to_string().find("ESTIMATE"), std::string::npos);
  EXPECT_NE(m.to_string().find("1->2"), std::string::npos);
}

TEST(ProcessTest, SendStampsAndDelivers) {
  Cluster cluster{test_config(2)};
  auto& r0 = cluster.process(0).add_layer<RecorderLayer>();
  auto& r1 = cluster.process(1).add_layer<RecorderLayer>();
  cluster.sim().schedule(des::Duration::from_ms(1), [&cluster] {
    Message m;
    m.kind = MsgKind::kApp;
    m.value = 42;
    cluster.process(0).send(m, 1);
  });
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(10));
  ASSERT_EQ(r1.received.size(), 1u);
  EXPECT_EQ(r1.received[0].value, 42);
  EXPECT_EQ(r1.received[0].from, 0u);
  EXPECT_EQ(r1.received[0].to, 1u);
  EXPECT_DOUBLE_EQ(r1.received[0].sent_at.to_ms(), 1.0);
  EXPECT_TRUE(r0.received.empty());
  EXPECT_TRUE(r0.started);
  EXPECT_EQ(cluster.process(0).messages_sent(), 1u);
  EXPECT_EQ(cluster.process(1).messages_received(), 1u);
}

TEST(ProcessTest, SelfSendRejected) {
  Cluster cluster{test_config(2)};
  cluster.process(0).add_layer<RecorderLayer>();
  cluster.run_until(des::TimePoint::origin());
  EXPECT_THROW(cluster.process(0).send(Message{}, 0), std::invalid_argument);
}

TEST(ProcessTest, BroadcastReachesAllOthersInIdOrder) {
  Cluster cluster{test_config(4)};
  std::vector<RecorderLayer*> recorders;
  for (HostId i = 0; i < 4; ++i) {
    recorders.push_back(&cluster.process(i).add_layer<RecorderLayer>());
  }
  cluster.sim().schedule(des::Duration::zero(), [&cluster] {
    Message m;
    m.kind = MsgKind::kApp;
    cluster.process(1).broadcast(m);
  });
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(10));
  EXPECT_TRUE(recorders[1]->received.empty());  // no self-delivery
  std::vector<double> arrivals;
  for (const HostId i : {0u, 2u, 3u}) {
    ASSERT_EQ(recorders[i]->received.size(), 1u);
    arrivals.push_back(recorders[i]->received[0].sent_at.to_ms());
  }
  // A broadcast is n-1 unicasts sent back to back; ascending-id frame order
  // means host 0's frame occupies the medium first.
  EXPECT_EQ(cluster.process(1).messages_sent(), 3u);
}

TEST(ProcessTest, BroadcastUnicastOrderIsAscendingByDeliveryTime) {
  Cluster cluster{test_config(4)};
  std::vector<RecorderLayer*> recorders;
  for (HostId i = 0; i < 4; ++i) {
    recorders.push_back(&cluster.process(i).add_layer<RecorderLayer>());
  }
  std::vector<std::pair<double, HostId>> deliveries;
  cluster.sim().schedule(des::Duration::zero(), [&cluster] {
    Message m;
    m.kind = MsgKind::kApp;
    cluster.process(0).broadcast(m);
  });
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(10));
  // With identical service times, destination 1 hears first, then 2, then 3.
  double prev = -1;
  for (const HostId i : {1u, 2u, 3u}) {
    ASSERT_EQ(recorders[i]->received.size(), 1u);
    // Delivery time == now when the recorder ran; infer from per-host stats.
    EXPECT_GT(cluster.process(i).messages_received(), 0u);
    (void)prev;
  }
}

TEST(ProcessTest, TimersFireAndCancel) {
  Cluster cluster{test_config(2)};
  cluster.process(0).add_layer<RecorderLayer>();
  int fired = 0;
  cluster.run_until(des::TimePoint::origin());  // start layers
  auto& p = cluster.process(0);
  p.set_timer(des::Duration::from_ms(1), [&] { ++fired; });
  const TimerId cancelled = p.set_timer(des::Duration::from_ms(2), [&] { ++fired; });
  p.cancel_timer(cancelled);
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(10));
  EXPECT_EQ(fired, 1);
}

TEST(ProcessTest, OsTimerQuantisedByTickModel) {
  ClusterConfig cfg = test_config(2);
  cfg.timers = net::TimerModel::ideal();
  cfg.timers.tick_ms = 10.0;
  Cluster cluster{cfg};
  cluster.process(0).add_layer<RecorderLayer>();
  double fired_at = -1;
  cluster.run_until(des::TimePoint::origin());
  cluster.process(0).set_os_timer(des::Duration::from_ms(3), [&] {
    fired_at = cluster.now().to_ms();
  });
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(50));
  EXPECT_DOUBLE_EQ(fired_at, 10.0);  // rounded up to the next tick
}

TEST(ProcessTest, CrashStopsDeliveryTimersAndSends) {
  Cluster cluster{test_config(3)};
  auto& r0 = cluster.process(0).add_layer<RecorderLayer>();
  auto& r1 = cluster.process(1).add_layer<RecorderLayer>();
  cluster.process(2).add_layer<RecorderLayer>();
  int timer_fired = 0;
  cluster.run_until(des::TimePoint::origin());
  cluster.process(1).set_timer(des::Duration::from_ms(5), [&] { ++timer_fired; });

  // In-flight message to 1, then crash 1 before it arrives.
  Message m;
  m.kind = MsgKind::kApp;
  cluster.process(0).send(m, 1);
  cluster.crash_at(1, des::TimePoint::origin() + des::Duration::from_ms(0.05));
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(20));

  EXPECT_TRUE(r1.crashed);
  EXPECT_TRUE(r1.received.empty());
  EXPECT_EQ(timer_fired, 0);
  EXPECT_TRUE(cluster.process(1).crashed());
  // The crashed process cannot send.
  cluster.process(1).send(m, 0);
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(40));
  EXPECT_TRUE(r0.received.empty());
}

TEST(ProcessTest, RestartRejoinsAndRunsOnRestartHooks) {
  Cluster cluster{test_config(2)};
  auto& r0 = cluster.process(0).add_layer<RecorderLayer>();
  struct RestartLayer : RecorderLayer {
    void on_restart() override { ++restarts; }
    int restarts = 0;
  };
  auto& r1 = cluster.process(1).add_layer<RestartLayer>();
  cluster.run_until(des::TimePoint::origin());

  cluster.crash_at(1, des::TimePoint::origin() + des::Duration::from_ms(1));
  cluster.recover_at(1, des::TimePoint::origin() + des::Duration::from_ms(5));
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(10));
  EXPECT_FALSE(cluster.process(1).crashed());
  EXPECT_EQ(r1.restarts, 1);

  // Traffic flows again in both directions after the warm restart.
  Message m;
  m.kind = MsgKind::kApp;
  cluster.process(0).send(m, 1);
  cluster.process(1).send(m, 0);
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(20));
  EXPECT_EQ(r1.received.size(), 1u);
  EXPECT_EQ(r0.received.size(), 1u);
  // Restarting a live process is a no-op.
  cluster.process(1).restart();
  EXPECT_EQ(r1.restarts, 1);
}

TEST(ProcessTest, PreCrashTimersStayDeadAcrossRestart) {
  // Regression for the warm-restart aliasing bug: a timer armed before the
  // crash must not fire after the recovery (it belongs to the dead epoch),
  // while timers armed after the restart work normally.
  Cluster cluster{test_config(2)};
  cluster.process(0).add_layer<RecorderLayer>();
  cluster.process(1).add_layer<RecorderLayer>();
  cluster.run_until(des::TimePoint::origin());

  int stale_fired = 0;
  int fresh_fired = 0;
  cluster.process(1).set_timer(des::Duration::from_ms(8), [&] { ++stale_fired; });
  cluster.process(1).set_os_timer(des::Duration::from_ms(9), [&] { ++stale_fired; });
  cluster.crash_at(1, des::TimePoint::origin() + des::Duration::from_ms(2));
  cluster.recover_at(1, des::TimePoint::origin() + des::Duration::from_ms(4));
  cluster.sim().schedule_at(des::TimePoint::origin() + des::Duration::from_ms(5), [&] {
    cluster.process(1).set_timer(des::Duration::from_ms(1), [&] { ++fresh_fired; });
  });
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(20));
  EXPECT_EQ(stale_fired, 0);  // both pre-crash timers died with their epoch
  EXPECT_EQ(fresh_fired, 1);
}

TEST(ProcessTest, LayerLookupByType) {
  Cluster cluster{test_config(2)};
  auto& rec = cluster.process(0).add_layer<RecorderLayer>();
  EXPECT_EQ(&cluster.process(0).layer<RecorderLayer>(), &rec);
  struct OtherLayer : Layer {
    void on_message(const Message&) override {}
  };
  EXPECT_THROW((void)cluster.process(0).layer<OtherLayer>(), std::logic_error);
}

TEST(ClusterTest, PingPongRoundTrip) {
  Cluster cluster{test_config(2)};
  auto& r0 = cluster.process(0).add_layer<RecorderLayer>();
  auto& r1 = cluster.process(1).add_layer<RecorderLayer>();
  r1.echo = true;
  cluster.sim().schedule(des::Duration::zero(), [&cluster] {
    Message ping;
    ping.kind = MsgKind::kPing;
    ping.probe_id = 7;
    cluster.process(0).send(ping, 1);
  });
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(10));
  ASSERT_EQ(r0.received.size(), 1u);
  EXPECT_EQ(r0.received[0].kind, MsgKind::kPong);
  EXPECT_EQ(r0.received[0].probe_id, 7u);
}

TEST(ClusterTest, RunUntilPredicateStopsEarly) {
  Cluster cluster{test_config(2)};
  auto& r1 = cluster.process(1).add_layer<RecorderLayer>();
  cluster.process(0).add_layer<RecorderLayer>();
  for (int i = 0; i < 10; ++i) {
    cluster.sim().schedule(des::Duration::from_ms(i), [&cluster] {
      Message m;
      m.kind = MsgKind::kApp;
      cluster.process(0).send(m, 1);
    });
  }
  cluster.run_until([&] { return r1.received.size() >= 2; },
                    des::TimePoint::origin() + des::Duration::from_ms(100));
  EXPECT_EQ(r1.received.size(), 2u);
  EXPECT_LT(cluster.now().to_ms(), 3.0);
}

TEST(ClusterTest, DeterministicAcrossIdenticalSeeds) {
  auto run_one = [](std::uint64_t seed) {
    Cluster cluster{test_config(3, seed)};
    auto& r2 = cluster.process(2).add_layer<RecorderLayer>();
    cluster.process(0).add_layer<RecorderLayer>();
    cluster.process(1).add_layer<RecorderLayer>();
    cluster.sim().schedule(des::Duration::zero(), [&cluster] {
      Message m;
      m.kind = MsgKind::kApp;
      cluster.process(0).broadcast(m);
      cluster.process(1).broadcast(m);
    });
    cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(5));
    return r2.received.size();
  };
  EXPECT_EQ(run_one(5), run_one(5));
}

TEST(ClusterTest, RejectsTooFewProcesses) {
  ClusterConfig cfg = test_config(2);
  cfg.n = 1;
  EXPECT_THROW(Cluster{cfg}, std::invalid_argument);
}

TEST(ClusterTest, InitialCrashTakesEffectBeforeStart) {
  Cluster cluster{test_config(3)};
  auto& r0 = cluster.process(0).add_layer<RecorderLayer>();
  auto& r1 = cluster.process(1).add_layer<RecorderLayer>();
  cluster.process(2).add_layer<RecorderLayer>();
  cluster.crash_initially(1);
  cluster.sim().schedule(des::Duration::zero(), [&cluster] {
    Message m;
    m.kind = MsgKind::kApp;
    cluster.process(2).broadcast(m);
  });
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(10));
  EXPECT_EQ(r0.received.size(), 1u);
  EXPECT_TRUE(r1.received.empty());
  EXPECT_FALSE(r1.started);  // crashed before on_start
}

}  // namespace
}  // namespace sanperf::runtime
