// Tests of the SAN formalism: distributions, model structure, simulator
// semantics (enabling, race policy, instantaneous priority, gates, cases),
// composition helpers and transient studies.
#include <gtest/gtest.h>

#include <cmath>

#include "san/compose.hpp"
#include "san/distribution.hpp"
#include "san/model.hpp"
#include "san/simulator.hpp"
#include "san/study.hpp"

namespace sanperf::san {
namespace {

des::RandomEngine rng_for_test() { return des::RandomEngine{12345}; }

// --------------------------------------------------------------------------
// Distribution
// --------------------------------------------------------------------------

TEST(DistributionTest, DeterministicAlwaysSame) {
  auto rng = rng_for_test();
  const auto d = Distribution::deterministic_ms(0.025);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.sample(rng), des::Duration::from_ms(0.025));
  }
  EXPECT_TRUE(d.is_deterministic());
  EXPECT_DOUBLE_EQ(d.mean_ms(), 0.025);
}

TEST(DistributionTest, UniformBoundsAndMean) {
  auto rng = rng_for_test();
  const auto d = Distribution::uniform_ms(1.0, 3.0);
  double sum = 0;
  const int k = 20000;
  for (int i = 0; i < k; ++i) {
    const double x = d.sample(rng).to_ms();
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 3.0);
    sum += x;
  }
  EXPECT_NEAR(sum / k, 2.0, 0.02);
  EXPECT_DOUBLE_EQ(d.mean_ms(), 2.0);
  EXPECT_FALSE(d.is_deterministic());
}

TEST(DistributionTest, ExponentialMean) {
  auto rng = rng_for_test();
  const auto d = Distribution::exponential_ms(4.0);
  double sum = 0;
  const int k = 100000;
  for (int i = 0; i < k; ++i) sum += d.sample(rng).to_ms();
  EXPECT_NEAR(sum / k, 4.0, 0.1);
  EXPECT_DOUBLE_EQ(d.mean_ms(), 4.0);
}

TEST(DistributionTest, WeibullMean) {
  auto rng = rng_for_test();
  const auto d = Distribution::weibull_ms(2.0, 1.0);
  double sum = 0;
  const int k = 100000;
  for (int i = 0; i < k; ++i) sum += d.sample(rng).to_ms();
  const double expected = std::tgamma(1.5);  // scale * Gamma(1 + 1/k)
  EXPECT_NEAR(sum / k, expected, 0.01);
  EXPECT_NEAR(d.mean_ms(), expected, 1e-12);
}

TEST(DistributionTest, BimodalComponentsAndWeights) {
  auto rng = rng_for_test();
  const auto d = Distribution::bimodal_uniform_ms(0.8, 0.10, 0.13, 0.145, 0.35);
  int low = 0;
  const int k = 50000;
  for (int i = 0; i < k; ++i) {
    const double x = d.sample(rng).to_ms();
    EXPECT_TRUE((x >= 0.10 && x <= 0.13) || (x >= 0.145 && x <= 0.35));
    if (x <= 0.13) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / k, 0.8, 0.01);
  EXPECT_NEAR(d.mean_ms(), 0.8 * 0.115 + 0.2 * 0.2475, 1e-12);
}

TEST(DistributionTest, MixtureOfMixtures) {
  const auto bimodal = Distribution::bimodal_uniform_ms(0.5, 0.0, 1.0, 2.0, 3.0);
  const auto mixed = Distribution::mixture({{0.5, bimodal},
                                            {0.5, Distribution::deterministic_ms(10.0)}});
  EXPECT_NEAR(mixed.mean_ms(), 0.5 * 1.5 + 0.5 * 10.0, 1e-12);
}

TEST(DistributionTest, FromFitMatchesBimodal) {
  stats::BimodalUniform fit{0.7, 1.0, 2.0, 3.0, 4.0};
  const auto d = Distribution::from_fit(fit);
  EXPECT_NEAR(d.mean_ms(), fit.mean(), 1e-12);
}

TEST(DistributionTest, RejectsBadParameters) {
  EXPECT_THROW(Distribution::deterministic_ms(-1), std::invalid_argument);
  EXPECT_THROW(Distribution::exponential_ms(0), std::invalid_argument);
  EXPECT_THROW(Distribution::uniform_ms(2, 1), std::invalid_argument);
  EXPECT_THROW(Distribution::weibull_ms(0, 1), std::invalid_argument);
  EXPECT_THROW(Distribution::bimodal_uniform_ms(1.5, 0, 1, 2, 3), std::invalid_argument);
  EXPECT_THROW(Distribution::mixture({}), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Model structure
// --------------------------------------------------------------------------

TEST(SanModelTest, PlaceLookupAndInitialMarking) {
  SanModel m;
  const PlaceId a = m.place("a", 2);
  const PlaceId b = m.place("b");
  EXPECT_EQ(m.find_place("a"), a);
  EXPECT_TRUE(m.has_place("b"));
  EXPECT_FALSE(m.has_place("c"));
  EXPECT_THROW((void)m.find_place("c"), std::out_of_range);
  EXPECT_THROW(m.place("a"), std::logic_error);  // duplicate
  const Marking init = m.initial_marking();
  EXPECT_EQ(init.get(a), 2);
  EXPECT_EQ(init.get(b), 0);
}

TEST(SanModelTest, ValidateCatchesBadCaseProbabilities) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId b = m.place("b");
  m.instant_activity("act").in(a).case_prob(0.5).out(b).case_prob(0.3).out(b);
  EXPECT_THROW(m.validate(), std::logic_error);
}

TEST(SanModelTest, ValidateCatchesUntriggerableActivity) {
  SanModel m;
  const PlaceId b = m.place("b");
  m.instant_activity("act").out(b);  // no input arc, no gate
  EXPECT_THROW(m.validate(), std::logic_error);
}

TEST(SanModelTest, DependentsIndexCoversArcsAndGateReads) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId g = m.place("g", 0);
  const PlaceId out = m.place("out");
  const auto gate = m.input_gate("gate", {g}, [g](const Marking& mk) { return mk.get(g) > 0; });
  auto act = m.timed_activity("t", Distribution::deterministic_ms(1));
  act.in(a).in_gate(gate).out(out);
  const auto& deps_a = m.dependents(a);
  const auto& deps_g = m.dependents(g);
  ASSERT_EQ(deps_a.size(), 1u);
  ASSERT_EQ(deps_g.size(), 1u);
  EXPECT_EQ(deps_a[0], act.id());
  EXPECT_EQ(deps_g[0], act.id());
  EXPECT_TRUE(m.dependents(out).empty());
}

TEST(MarkingTest, RejectsNegativeTokens) {
  Marking m{2};
  m.set(0, 3);
  EXPECT_EQ(m.get(0), 3);
  EXPECT_THROW(m.set(1, -1), std::logic_error);
  EXPECT_THROW(m.add(1, -1), std::logic_error);
}

// --------------------------------------------------------------------------
// Simulator semantics
// --------------------------------------------------------------------------

TEST(SanSimulatorTest, SimpleTimedChainFiresInOrder) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId b = m.place("b");
  const PlaceId c = m.place("c");
  m.timed_activity("t1", Distribution::deterministic_ms(2)).in(a).out(b);
  m.timed_activity("t2", Distribution::deterministic_ms(3)).in(b).out(c);

  SanSimulator sim{m, rng_for_test()};
  const auto res = sim.run();
  EXPECT_EQ(res.reason, StopReason::kDeadlock);
  EXPECT_EQ(sim.marking().get(c), 1);
  EXPECT_EQ(res.end_time, des::TimePoint::origin() + des::Duration::from_ms(5));
  EXPECT_EQ(res.firings, 2u);
}

TEST(SanSimulatorTest, StopPredicateEndsRun) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId b = m.place("b");
  m.timed_activity("loop", Distribution::deterministic_ms(1)).in(a).out(a).out(b);

  SanSimulator sim{m, rng_for_test()};
  sim.set_stop_predicate([b](const Marking& mk) { return mk.get(b) >= 3; });
  const auto res = sim.run();
  EXPECT_EQ(res.reason, StopReason::kPredicate);
  EXPECT_EQ(sim.marking().get(b), 3);
  EXPECT_EQ(res.end_time, des::TimePoint::origin() + des::Duration::from_ms(3));
}

TEST(SanSimulatorTest, TimeLimitRespected) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  m.timed_activity("loop", Distribution::deterministic_ms(1)).in(a).out(a);
  SanSimulator sim{m, rng_for_test()};
  const auto res = sim.run(des::Duration::from_ms(10.5));
  EXPECT_EQ(res.reason, StopReason::kTimeLimit);
  EXPECT_EQ(res.firings, 10u);
}

TEST(SanSimulatorTest, InstantaneousFiresBeforeTimed) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId b = m.place("b");
  const PlaceId c = m.place("c");
  // Both enabled initially; the instantaneous one must win and disable the
  // timed one by stealing the token.
  m.timed_activity("slow", Distribution::deterministic_ms(1)).in(a).out(b);
  m.instant_activity("fast").in(a).out(c);
  SanSimulator sim{m, rng_for_test()};
  const auto res = sim.run();
  EXPECT_EQ(sim.marking().get(c), 1);
  EXPECT_EQ(sim.marking().get(b), 0);
  EXPECT_EQ(res.end_time, des::TimePoint::origin());
}

TEST(SanSimulatorTest, InstantaneousWeightsRespected) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId x = m.place("x");
  const PlaceId y = m.place("y");
  m.instant_activity("to_x", 3.0).in(a).out(x);
  m.instant_activity("to_y", 1.0).in(a).out(y);

  int hits_x = 0;
  const int k = 4000;
  SanSimulator sim{m, rng_for_test()};
  const des::RandomEngine master{777};
  for (int i = 0; i < k; ++i) {
    sim.reset(master.substream("rep", static_cast<std::uint64_t>(i)));
    sim.run();
    hits_x += sim.marking().get(x);
  }
  EXPECT_NEAR(static_cast<double>(hits_x) / k, 0.75, 0.03);
}

TEST(SanSimulatorTest, CaseProbabilitiesRespected) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId x = m.place("x");
  const PlaceId y = m.place("y");
  m.instant_activity("act").in(a).case_prob(0.25).out(x).case_prob(0.75).out(y);

  int hits_y = 0;
  const int k = 4000;
  SanSimulator sim{m, rng_for_test()};
  const des::RandomEngine master{778};
  for (int i = 0; i < k; ++i) {
    sim.reset(master.substream("rep", static_cast<std::uint64_t>(i)));
    sim.run();
    hits_y += sim.marking().get(y);
  }
  EXPECT_NEAR(static_cast<double>(hits_y) / k, 0.75, 0.03);
}

TEST(SanSimulatorTest, InputGatePredicateAndFunction) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId guard = m.place("guard", 0);
  const PlaceId out = m.place("out");
  const auto gate = m.input_gate(
      "g", {guard}, [guard](const Marking& mk) { return mk.get(guard) >= 2; },
      [guard](Marking& mk) { mk.set(guard, 0); });
  m.timed_activity("t", Distribution::deterministic_ms(1)).in(a).in_gate(gate).out(out);
  const PlaceId src = m.place("src", 2);
  m.timed_activity("feeder", Distribution::deterministic_ms(3)).in(src).out(guard);

  SanSimulator sim{m, rng_for_test()};
  sim.run();
  // feeder fires at 3 and 6; gate opens at 6; t fires at 7 and clears guard.
  EXPECT_EQ(sim.marking().get(out), 1);
  EXPECT_EQ(sim.marking().get(guard), 0);
  EXPECT_EQ(sim.now(), des::TimePoint::origin() + des::Duration::from_ms(7));
}

TEST(SanSimulatorTest, OutputGateRunsOnFiring) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId out = m.place("out");
  const auto og = m.output_gate("og", [out](Marking& mk) { mk.add(out, 5); });
  m.instant_activity("act").in(a).out_gate(og);
  SanSimulator sim{m, rng_for_test()};
  sim.run();
  EXPECT_EQ(sim.marking().get(out), 5);
}

TEST(SanSimulatorTest, RacePolicyAbortsDisabledActivation) {
  SanModel m;
  const PlaceId token = m.place("token", 1);
  const PlaceId fast_out = m.place("fast_out");
  const PlaceId slow_out = m.place("slow_out");
  // Two timed activities race for one token; the slower activation must be
  // aborted when the faster one consumes the token.
  m.timed_activity("fast", Distribution::deterministic_ms(1)).in(token).out(fast_out);
  m.timed_activity("slow", Distribution::deterministic_ms(5)).in(token).out(slow_out);
  SanSimulator sim{m, rng_for_test()};
  const auto res = sim.run();
  EXPECT_EQ(sim.marking().get(fast_out), 1);
  EXPECT_EQ(sim.marking().get(slow_out), 0);
  EXPECT_EQ(res.firings, 1u);
  EXPECT_EQ(res.end_time, des::TimePoint::origin() + des::Duration::from_ms(1));
}

TEST(SanSimulatorTest, ReenabledActivitySamplesAfresh) {
  SanModel m;
  const PlaceId gate_tokens = m.place("gt", 0);
  const PlaceId src = m.place("src", 2);
  const PlaceId out = m.place("out");
  // "work" is enabled only while gt > 0; the feeder pulses gt on and the
  // consumer pulls it off, forcing re-enabling cycles.
  m.timed_activity("feeder", Distribution::deterministic_ms(10)).in(src).out(gate_tokens);
  m.timed_activity("work", Distribution::deterministic_ms(4)).in(gate_tokens).out(out);
  SanSimulator sim{m, rng_for_test()};
  sim.run();
  // feeder at 10 -> work at 14; feeder at 20 -> work at 24.
  EXPECT_EQ(sim.marking().get(out), 2);
  EXPECT_EQ(sim.now(), des::TimePoint::origin() + des::Duration::from_ms(24));
}

TEST(SanSimulatorTest, MultiplicityRequiresEnoughTokens) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId out = m.place("out");
  // Consumes two tokens from `a` per firing.
  m.instant_activity("pair").in(a).in(a).out(out);
  SanSimulator sim{m, rng_for_test()};
  sim.run();
  EXPECT_EQ(sim.marking().get(out), 0);  // only one token: disabled

  SanModel m2;
  const PlaceId a2 = m2.place("a", 4);
  const PlaceId out2 = m2.place("out");
  m2.instant_activity("pair").in(a2).in(a2).out(out2);
  SanSimulator sim2{m2, rng_for_test()};
  sim2.run();
  EXPECT_EQ(sim2.marking().get(out2), 2);
  EXPECT_EQ(sim2.marking().get(a2), 0);
}

TEST(SanSimulatorTest, LivelockDetected) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  m.instant_activity("spin").in(a).out(a);
  SanSimulator sim{m, rng_for_test()};
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(SanSimulatorTest, FireHookAndCounts) {
  SanModel m;
  const PlaceId a = m.place("a", 3);
  const PlaceId b = m.place("b");
  const auto act = m.timed_activity("t", Distribution::deterministic_ms(1)).in(a).out(b);
  SanSimulator sim{m, rng_for_test()};
  int hook_calls = 0;
  sim.set_fire_hook([&](ActivityId id, des::TimePoint) {
    EXPECT_EQ(id, act.id());
    ++hook_calls;
  });
  sim.run();
  EXPECT_EQ(hook_calls, 3);
  EXPECT_EQ(sim.fire_count(act.id()), 3u);
  EXPECT_EQ(sim.total_firings(), 3u);
}

TEST(SanSimulatorTest, ResetRestoresInitialState) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId b = m.place("b");
  m.timed_activity("t", Distribution::deterministic_ms(1)).in(a).out(b);
  SanSimulator sim{m, rng_for_test()};
  sim.run();
  EXPECT_EQ(sim.marking().get(b), 1);
  sim.reset(rng_for_test());
  EXPECT_EQ(sim.marking().get(b), 0);
  EXPECT_EQ(sim.marking().get(a), 1);
  EXPECT_EQ(sim.total_firings(), 0u);
  sim.run();
  EXPECT_EQ(sim.marking().get(b), 1);
}

TEST(SanSimulatorTest, DeterministicGivenSeed) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId b = m.place("b");
  m.timed_activity("t", Distribution::uniform_ms(1, 5)).in(a).out(b).out(a);
  SanSimulator s1{m, des::RandomEngine{9}};
  SanSimulator s2{m, des::RandomEngine{9}};
  s1.set_stop_predicate([b](const Marking& mk) { return mk.get(b) >= 50; });
  s2.set_stop_predicate([b](const Marking& mk) { return mk.get(b) >= 50; });
  EXPECT_EQ(s1.run().end_time, s2.run().end_time);
}

// A single-server queue built from grab/serve pairs: utilisation and token
// conservation sanity-check of the resource idiom used by the transport
// chains.
TEST(SanSimulatorTest, ResourceGrabServeMutualExclusion) {
  SanModel m;
  const PlaceId jobs = m.place("jobs", 5);
  const PlaceId server = m.place("server", 1);
  const PlaceId busy = m.place("busy");
  const PlaceId done = m.place("done");
  m.instant_activity("grab").in(jobs).in(server).out(busy);
  m.timed_activity("serve", Distribution::deterministic_ms(2)).in(busy).out(done).out(server);
  SanSimulator sim{m, rng_for_test()};
  // busy can never exceed 1: the server place enforces mutual exclusion.
  sim.set_fire_hook([&](ActivityId, des::TimePoint) {
    EXPECT_LE(sim.marking().get(busy), 1);
  });
  const auto res = sim.run();
  EXPECT_EQ(sim.marking().get(done), 5);
  EXPECT_EQ(sim.marking().get(server), 1);
  // 5 jobs serialised at 2 ms each.
  EXPECT_EQ(res.end_time, des::TimePoint::origin() + des::Duration::from_ms(10));
}

// --------------------------------------------------------------------------
// Composition helpers
// --------------------------------------------------------------------------

TEST(ComposeTest, ScopeQualifiesNames) {
  SanModel m;
  const Scope scope{m, "P1"};
  const PlaceId p = scope.place("state", 1);
  EXPECT_EQ(m.place_name(p), "P1.state");
  EXPECT_EQ(scope.find_place("state"), p);
  const Scope child = scope.sub("A");
  child.place("x");
  EXPECT_TRUE(m.has_place("P1.A.x"));
}

TEST(ComposeTest, RepBuildsDisjointReplicasSharingPlaces) {
  SanModel m;
  const PlaceId shared = m.place("shared", 0);
  rep(m, "R", 3, [shared](const Scope& scope, std::size_t) {
    const PlaceId local = scope.place("tok", 1);
    scope.instant_activity("fire").in(local).out(shared);
  });
  m.validate();
  EXPECT_TRUE(m.has_place("R[0].tok"));
  EXPECT_TRUE(m.has_place("R[2].tok"));
  SanSimulator sim{m, rng_for_test()};
  sim.run();
  EXPECT_EQ(sim.marking().get(shared), 3);  // JOIN via the shared place
}

TEST(ComposeTest, JoinRunsEveryPart) {
  SanModel m;
  const PlaceId shared = m.place("bus", 1);
  join(m, {{"producer",
            [shared](const Scope& s) {
              const PlaceId p = s.place("go", 1);
              s.instant_activity("put").in(p).out(shared);
            }},
           {"consumer",
            [shared](const Scope& s) {
              const PlaceId sink = s.place("sink");
              s.instant_activity("take").in(shared).out(sink);
            }}});
  m.validate();
  EXPECT_TRUE(m.has_place("producer.go"));
  EXPECT_TRUE(m.has_place("consumer.sink"));
}

// --------------------------------------------------------------------------
// Transient studies
// --------------------------------------------------------------------------

TEST(TransientStudyTest, TimeToAbsorptionMeanAndCi) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId b = m.place("b");
  m.timed_activity("t", Distribution::uniform_ms(2, 4)).in(a).out(b);
  TransientStudy study{m, [b](const Marking& mk) { return mk.get(b) > 0; }};
  const auto result = study.run(2000, 4242);
  EXPECT_EQ(result.rewards.size(), 2000u);
  EXPECT_NEAR(result.summary.mean(), 3.0, 0.05);
  EXPECT_TRUE(result.ci.contains(result.summary.mean()));
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_GT(result.ci.half_width, 0.0);
}

TEST(TransientStudyTest, ReproducibleForSameSeed) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId b = m.place("b");
  m.timed_activity("t", Distribution::exponential_ms(1)).in(a).out(b);
  TransientStudy study{m, [b](const Marking& mk) { return mk.get(b) > 0; }};
  const auto r1 = study.run(100, 1);
  const auto r2 = study.run(100, 1);
  EXPECT_EQ(r1.rewards, r2.rewards);
  const auto r3 = study.run(100, 2);
  EXPECT_NE(r1.rewards, r3.rewards);
}

TEST(TransientStudyTest, DropsRunsThatNeverStop) {
  SanModel m;
  const PlaceId a = m.place("a", 1);
  const PlaceId b = m.place("b");
  // Fires into an absorbing place that never satisfies the predicate.
  m.timed_activity("t", Distribution::deterministic_ms(1)).in(a).out(b);
  const PlaceId never = m.place("never");
  TransientStudy study{m, [never](const Marking& mk) { return mk.get(never) > 0; }};
  study.set_time_limit(des::Duration::from_ms(10));
  const auto result = study.run(50, 3);
  EXPECT_EQ(result.dropped, 50u);
  EXPECT_TRUE(result.rewards.empty());
}

TEST(TransientStudyTest, CustomReward) {
  SanModel m;
  const PlaceId a = m.place("a", 3);
  const PlaceId b = m.place("b");
  const auto act = m.timed_activity("t", Distribution::deterministic_ms(1)).in(a).out(b);
  TransientStudy study{
      m, [b](const Marking& mk) { return mk.get(b) >= 3; },
      [act](const SanSimulator& sim, const RunResult&) {
        return static_cast<double>(sim.fire_count(act.id()));
      }};
  const auto result = study.run(10, 5);
  for (const double r : result.rewards) EXPECT_DOUBLE_EQ(r, 3.0);
}

}  // namespace
}  // namespace sanperf::san
