// Tests of the SAN submodels: transport chains, FD submodels and the full
// consensus model in all three run classes.
#include <gtest/gtest.h>

#include "core/replication.hpp"
#include "core/simulation.hpp"
#include "san/simulator.hpp"
#include "san/study.hpp"
#include "sanmodels/consensus_model.hpp"
#include "sanmodels/fd_submodel.hpp"
#include "sanmodels/network_chains.hpp"

namespace sanperf::sanmodels {
namespace {

using san::Distribution;
using san::Marking;
using san::SanModel;
using san::SanSimulator;

// Study loops fan out over the shared replication pool (SANPERF_THREADS);
// results are bit-identical to TransientStudy::run at any thread count, so
// this only shrinks the suite's wall clock.
san::StudyResult run_study(const san::TransientStudy& study, std::size_t replications,
                           std::uint64_t seed) {
  return core::run_study(core::default_runner(), study, replications, seed);
}

TransportParams fixed_transport() {
  TransportParams p;
  p.send_cpu = Distribution::deterministic_ms(0.025);
  p.recv_cpu = Distribution::deterministic_ms(0.025);
  p.frame_unicast = Distribution::deterministic_ms(0.09);
  p.frame_broadcast = Distribution::deterministic_ms(0.18);
  return p;
}

TEST(NetworkChainTest, UnicastDelayDecomposition) {
  SanModel m;
  const auto res = make_resources(m, 2);
  const auto trg = m.place("trg", 1);
  const auto out = m.place("out");
  make_unicast_chain(m, "c", res, 0, 1, trg, out, fixed_transport());
  m.validate();
  SanSimulator sim{m, des::RandomEngine{1}};
  sim.run();
  EXPECT_EQ(sim.marking().get(out), 1);
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 0.14);
  // Resources returned.
  EXPECT_EQ(sim.marking().get(res.cpu[0]), 1);
  EXPECT_EQ(sim.marking().get(res.cpu[1]), 1);
  EXPECT_EQ(sim.marking().get(res.medium), 1);
}

TEST(NetworkChainTest, MediumSerialisesCompetingChains) {
  SanModel m;
  const auto res = make_resources(m, 4);
  const auto t1 = m.place("t1", 1);
  const auto t2 = m.place("t2", 1);
  const auto o1 = m.place("o1");
  const auto o2 = m.place("o2");
  make_unicast_chain(m, "c1", res, 0, 1, t1, o1, fixed_transport());
  make_unicast_chain(m, "c2", res, 2, 3, t2, o2, fixed_transport());
  SanSimulator sim{m, des::RandomEngine{2}};
  sim.run();
  // Distinct CPUs, shared medium: the second frame waits 0.09.
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 0.23);
  EXPECT_EQ(sim.marking().get(o1) + sim.marking().get(o2), 2);
}

TEST(NetworkChainTest, SenderCpuHeldDuringService) {
  SanModel m;
  const auto res = make_resources(m, 3);
  const auto t1 = m.place("t1", 1);
  const auto t2 = m.place("t2", 1);
  const auto o1 = m.place("o1");
  const auto o2 = m.place("o2");
  // Two messages from the SAME sender to DIFFERENT receivers, with a tiny
  // frame time: the only serialisation left is the sender's CPU.
  TransportParams p = fixed_transport();
  p.frame_unicast = Distribution::deterministic_ms(0.001);
  make_unicast_chain(m, "c1", res, 0, 1, t1, o1, p);
  make_unicast_chain(m, "c2", res, 0, 2, t2, o2, p);
  SanSimulator sim{m, des::RandomEngine{3}};
  sim.run();
  EXPECT_EQ(sim.marking().get(o1) + sim.marking().get(o2), 2);
  // Second send starts at 0.025 (CPU held), delivers at 0.05+0.001+0.025.
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 0.076);
}

TEST(NetworkChainTest, BroadcastSingleMediumOccupancy) {
  SanModel m;
  const auto res = make_resources(m, 3);
  const auto trg = m.place("trg", 1);
  const auto o1 = m.place("o1");
  const auto o2 = m.place("o2");
  make_broadcast_chain(m, "b", res, 0, {{1, o1}, {2, o2}}, trg, fixed_transport());
  m.validate();
  SanSimulator sim{m, des::RandomEngine{4}};
  sim.run();
  EXPECT_EQ(sim.marking().get(o1), 1);
  EXPECT_EQ(sim.marking().get(o2), 1);
  // 0.025 send + 0.18 broadcast frame + 0.025 recv (parallel receivers).
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 0.23);
  EXPECT_EQ(sim.marking().get(res.medium), 1);
}

TEST(NetworkChainTest, RejectsBadEndpoints) {
  SanModel m;
  const auto res = make_resources(m, 2);
  const auto trg = m.place("trg");
  const auto out = m.place("out");
  EXPECT_THROW(make_unicast_chain(m, "x", res, 0, 0, trg, out, fixed_transport()),
               std::invalid_argument);
  EXPECT_THROW(make_broadcast_chain(m, "y", res, 0, {}, trg, fixed_transport()),
               std::invalid_argument);
}

TEST(TransportParamsTest, NominalBroadcastScalesWithN) {
  const auto p3 = TransportParams::nominal(3);
  const auto p5 = TransportParams::nominal(5);
  EXPECT_GT(p5.frame_broadcast.mean_ms(), p3.frame_broadcast.mean_ms());
  EXPECT_GT(p3.frame_broadcast.mean_ms(), p3.frame_unicast.mean_ms());
  EXPECT_THROW(TransportParams::nominal(1), std::invalid_argument);
}

// --------------------------------------------------------------------------
// FD submodel
// --------------------------------------------------------------------------

TEST(FdSubmodelTest, StaticDetectorFixedForever) {
  SanModel m;
  const auto trusted = make_static_fd(m, "t", false);
  const auto suspected = make_static_fd(m, "s", true);
  const Marking init = m.initial_marking();
  EXPECT_FALSE(trusted.suspected(init));
  EXPECT_TRUE(suspected.suspected(init));
  EXPECT_FALSE(trusted.dynamic);
}

TEST(FdSubmodelTest, QosDetectorLongRunSuspicionFraction) {
  // Long-run fraction of time suspected must approach T_M / T_MR.
  fd::QosEstimate qos;
  qos.t_mr_ms = 20.0;
  qos.t_m_ms = 4.0;
  for (const auto sojourn : {fd::AbstractFdParams::Sojourn::kDeterministic,
                             fd::AbstractFdParams::Sojourn::kExponential}) {
    SanModel m;
    const auto params = fd::AbstractFdParams::from_qos(qos, sojourn);
    const auto places = make_qos_fd(m, "fd", params);
    m.validate();
    SanSimulator sim{m, des::RandomEngine{42}};
    double suspected_ms = 0;
    double last_ms = 0;
    bool was_suspected = false;
    sim.set_fire_hook([&](san::ActivityId, des::TimePoint at) {
      if (was_suspected) suspected_ms += at.to_ms() - last_ms;
      last_ms = at.to_ms();
      was_suspected = places.suspected(sim.marking());
    });
    sim.run(des::Duration::seconds(40));
    const double fraction = suspected_ms / last_ms;
    EXPECT_NEAR(fraction, 0.2, 0.02) << "sojourn kind " << static_cast<int>(sojourn);
  }
}

TEST(FdSubmodelTest, InitialStateProbabilityIsStationary) {
  fd::QosEstimate qos;
  qos.t_mr_ms = 10.0;
  qos.t_m_ms = 3.0;
  const auto params =
      fd::AbstractFdParams::from_qos(qos, fd::AbstractFdParams::Sojourn::kDeterministic);
  SanModel m;
  const auto places = make_qos_fd(m, "fd", params);
  int suspected_at_start = 0;
  const int k = 4000;
  SanSimulator sim{m, des::RandomEngine{1}};
  const des::RandomEngine master{5};
  for (int i = 0; i < k; ++i) {
    sim.reset(master.substream("rep", static_cast<std::uint64_t>(i)));
    sim.run(des::Duration::zero());  // settle the init activity only
    if (places.suspected(sim.marking())) ++suspected_at_start;
  }
  EXPECT_NEAR(suspected_at_start / static_cast<double>(k), 0.3, 0.025);
}

TEST(FdSubmodelTest, ZeroMistakeQosDegeneratesToStatic) {
  fd::AbstractFdParams params;
  params.trust_mean_ms = 100;
  params.suspect_mean_ms = 0;
  params.p_initial_suspect = 0;
  SanModel m;
  const auto places = make_qos_fd(m, "fd", params);
  EXPECT_FALSE(places.dynamic);
  EXPECT_FALSE(places.suspected(m.initial_marking()));
}

// --------------------------------------------------------------------------
// Full consensus model
// --------------------------------------------------------------------------

TEST(ConsensusSanTest, Class1DecidesOnce) {
  ConsensusSanConfig cfg;
  cfg.n = 3;
  cfg.transport = fixed_transport();
  const auto built = build_consensus_san(cfg);
  SanSimulator sim{built.model, des::RandomEngine{7}};
  sim.set_stop_predicate(built.stop_predicate());
  const auto res = sim.run(des::Duration::seconds(5));
  EXPECT_EQ(res.reason, san::StopReason::kPredicate);
  EXPECT_EQ(sim.marking().get(built.decided), 1);
  // Deterministic timing: est (0.14) + propose bcast (0.23 phase) + ack.
  EXPECT_GT(sim.now().to_ms(), 0.3);
  EXPECT_LT(sim.now().to_ms(), 2.0);
}

TEST(ConsensusSanTest, Class1LatencyGrowsWithN) {
  const des::RandomEngine master{8};
  double prev = 0;
  for (const std::size_t n : {3u, 5u, 7u}) {
    ConsensusSanConfig cfg;
    cfg.n = n;
    cfg.transport = TransportParams::nominal(n);
    const auto built = build_consensus_san(cfg);
    san::TransientStudy study{built.model, built.stop_predicate()};
    const auto result = run_study(study, 200, master.substream("n", n).seed());
    EXPECT_EQ(result.dropped, 0u);
    EXPECT_GT(result.summary.mean(), prev);
    prev = result.summary.mean();
  }
}

TEST(ConsensusSanTest, Class2CoordinatorCrashSlower) {
  ConsensusSanConfig base;
  base.n = 5;
  base.transport = TransportParams::nominal(5);
  const auto model_ok = build_consensus_san(base);

  ConsensusSanConfig crash = base;
  crash.initially_crashed = 0;
  const auto model_crash = build_consensus_san(crash);

  san::TransientStudy ok_study{model_ok.model, model_ok.stop_predicate()};
  san::TransientStudy crash_study{model_crash.model, model_crash.stop_predicate()};
  const auto ok = run_study(ok_study, 600, 91);
  const auto bad = run_study(crash_study, 600, 91);
  ASSERT_EQ(ok.dropped, 0u);
  ASSERT_EQ(bad.dropped, 0u);
  // Two rounds instead of one: clearly slower.
  EXPECT_GT(bad.summary.mean(), ok.summary.mean() * 1.2);
}

TEST(ConsensusSanTest, Class2ParticipantCrashFasterForN5) {
  // The paper's simulation: less traffic from the crashed participant means
  // lower latency (the single-broadcast model hides the n=3 anomaly).
  ConsensusSanConfig base;
  base.n = 5;
  base.transport = TransportParams::nominal(5);
  const auto model_ok = build_consensus_san(base);
  ConsensusSanConfig crash = base;
  crash.initially_crashed = 1;
  const auto model_crash = build_consensus_san(crash);

  san::TransientStudy ok_study{model_ok.model, model_ok.stop_predicate()};
  san::TransientStudy crash_study{model_crash.model, model_crash.stop_predicate()};
  const auto ok = run_study(ok_study, 1500, 93);
  const auto bad = run_study(crash_study, 1500, 93);
  EXPECT_LT(bad.summary.mean(), ok.summary.mean());
}

TEST(ConsensusSanTest, Class3GoodQosMatchesClass1) {
  // Nearly perfect detectors: class-3 latency must sit at the class-1 level.
  ConsensusSanConfig cfg;
  cfg.n = 3;
  cfg.transport = TransportParams::nominal(3);
  const auto class1 = build_consensus_san(cfg);

  fd::QosEstimate qos;
  qos.t_mr_ms = 100000.0;
  qos.t_m_ms = 0.1;
  cfg.qos_fd = fd::AbstractFdParams::from_qos(qos, fd::AbstractFdParams::Sojourn::kExponential);
  const auto class3 = build_consensus_san(cfg);

  san::TransientStudy s1{class1.model, class1.stop_predicate()};
  san::TransientStudy s3{class3.model, class3.stop_predicate()};
  const auto r1 = run_study(s1, 300, 95);
  const auto r3 = run_study(s3, 300, 95);
  EXPECT_NEAR(r3.summary.mean(), r1.summary.mean(), 0.15);
}

TEST(ConsensusSanTest, Class3BadQosMuchSlower) {
  ConsensusSanConfig cfg;
  cfg.n = 3;
  cfg.transport = TransportParams::nominal(3);
  const auto class1 = build_consensus_san(cfg);

  fd::QosEstimate qos;
  qos.t_mr_ms = 4.0;  // a mistake every 4 ms...
  qos.t_m_ms = 2.0;   // ...lasting 2 ms: suspected half the time
  cfg.qos_fd = fd::AbstractFdParams::from_qos(qos, fd::AbstractFdParams::Sojourn::kExponential);
  const auto class3 = build_consensus_san(cfg);

  san::TransientStudy s1{class1.model, class1.stop_predicate()};
  san::TransientStudy s3{class3.model, class3.stop_predicate()};
  s3.set_time_limit(des::Duration::seconds(10));
  const auto r1 = run_study(s1, 200, 96);
  const auto r3 = run_study(s3, 200, 96);
  EXPECT_GT(r3.summary.mean(), r1.summary.mean() * 2.0);
}

TEST(ConsensusSanTest, DeterministicVsExponentialSojournsDiffer) {
  fd::QosEstimate qos;
  qos.t_mr_ms = 6.0;
  qos.t_m_ms = 2.0;
  ConsensusSanConfig cfg;
  cfg.n = 3;
  cfg.transport = TransportParams::nominal(3);
  cfg.qos_fd = fd::AbstractFdParams::from_qos(qos, fd::AbstractFdParams::Sojourn::kDeterministic);
  const auto det = build_consensus_san(cfg);
  cfg.qos_fd = fd::AbstractFdParams::from_qos(qos, fd::AbstractFdParams::Sojourn::kExponential);
  const auto exp = build_consensus_san(cfg);
  san::TransientStudy sd{det.model, det.stop_predicate()};
  san::TransientStudy se{exp.model, exp.stop_predicate()};
  sd.set_time_limit(des::Duration::seconds(10));
  se.set_time_limit(des::Duration::seconds(10));
  const auto rd = run_study(sd, 300, 97);
  const auto re = run_study(se, 300, 97);
  // Same mean QoS, different variance: latencies differ measurably.
  EXPECT_GT(rd.summary.count(), 250u);
  EXPECT_GT(re.summary.count(), 250u);
  EXPECT_NE(rd.summary.mean(), re.summary.mean());
}

TEST(ConsensusSanTest, RejectsBadConfig) {
  ConsensusSanConfig cfg;
  cfg.n = 1;
  EXPECT_THROW(build_consensus_san(cfg), std::invalid_argument);
  cfg.n = 3;
  cfg.initially_crashed = 3;
  EXPECT_THROW(build_consensus_san(cfg), std::invalid_argument);
}

TEST(ConsensusSanTest, ModelSizeScalesQuadratically) {
  ConsensusSanConfig c3;
  c3.n = 3;
  const auto m3 = build_consensus_san(c3);
  ConsensusSanConfig c5;
  c5.n = 5;
  const auto m5 = build_consensus_san(c5);
  EXPECT_GT(m5.model.place_count(), m3.model.place_count());
  EXPECT_GT(m5.model.activity_count(), m3.model.activity_count());
  // Message chains dominate: ~3 n(n-1) unicast chains.
  EXPECT_GT(m5.model.activity_count(), 2 * m3.model.activity_count());
}

TEST(ConsensusSanTest, ReplicationsAreIndependentButReproducible) {
  ConsensusSanConfig cfg;
  cfg.n = 3;
  cfg.transport = TransportParams::nominal(3);
  const auto built = build_consensus_san(cfg);
  san::TransientStudy study{built.model, built.stop_predicate()};
  const auto a = run_study(study, 50, 123);
  const auto b = run_study(study, 50, 123);
  EXPECT_EQ(a.rewards, b.rewards);
  stats::SummaryStats spread;
  for (const double r : a.rewards) spread.add(r);
  EXPECT_GT(spread.stddev(), 0.0);  // bimodal frames produce variance
}

}  // namespace
}  // namespace sanperf::sanmodels
