// Unit and property tests for the statistics module.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "des/random.hpp"
#include "stats/bimodal_fit.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/ks.hpp"
#include "stats/student_t.hpp"
#include "stats/summary.hpp"

namespace sanperf::stats {
namespace {

TEST(SummaryTest, BasicMoments) {
  SummaryStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, SingleSampleHasZeroVariance) {
  SummaryStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean_ci(0.9).half_width, 0.0);
}

TEST(SummaryTest, MergeEqualsSequential) {
  des::RandomEngine rng{3};
  SummaryStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(SummaryTest, MergeWithEmptySides) {
  SummaryStats a, b;
  a.add(1.0);
  a.add(3.0);
  SummaryStats a_copy = a;
  a.merge(b);  // empty rhs
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // empty lhs
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SummaryTest, ConfidenceIntervalCoversTrueMean) {
  // Property: ~90% of 90% CIs over repeated normal samples contain mu.
  des::RandomEngine rng{17};
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    SummaryStats s;
    for (int i = 0; i < 30; ++i) s.add(rng.normal(10.0, 2.0));
    if (s.mean_ci(0.90).contains(10.0)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.84);
  EXPECT_LT(coverage, 0.96);
}

TEST(StudentTTest, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(normal_quantile(0.95), 1.644854, 1e-4);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-4);
  EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
}

TEST(StudentTTest, KnownCriticalValues) {
  // Classic t-table entries.
  EXPECT_NEAR(student_t_critical(0.95, 1), 12.706, 0.05);
  EXPECT_NEAR(student_t_critical(0.95, 2), 4.303, 0.02);
  EXPECT_NEAR(student_t_critical(0.90, 10), 1.812, 0.01);
  EXPECT_NEAR(student_t_critical(0.95, 30), 2.042, 0.01);
  EXPECT_NEAR(student_t_critical(0.90, 1000), 1.646, 0.01);
}

TEST(StudentTTest, ApproachesNormalForLargeDof) {
  EXPECT_NEAR(student_t_quantile(0.975, 100000), normal_quantile(0.975), 1e-3);
}

TEST(StudentTTest, SymmetricAroundZero) {
  for (const double dof : {1.0, 2.0, 5.0, 50.0}) {
    EXPECT_NEAR(student_t_quantile(0.3, dof), -student_t_quantile(0.7, dof), 1e-9);
  }
}

TEST(EcdfTest, EvalAndQuantile) {
  const Ecdf e{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(e.eval(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.eval(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.eval(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.eval(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.eval(9.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.26), 2.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 4.0);
}

TEST(EcdfTest, RejectsBadInput) {
  EXPECT_THROW(Ecdf{std::vector<double>{}}, std::invalid_argument);
  const Ecdf e{{1.0}};
  EXPECT_THROW((void)e.quantile(1.5), std::invalid_argument);
}

TEST(EcdfTest, MonotoneProperty) {
  des::RandomEngine rng{21};
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(0, 1));
  const Ecdf e{xs};
  double prev = -1;
  for (double x = -4; x <= 4; x += 0.05) {
    const double f = e.eval(x);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST(EcdfTest, QuantileInverseProperty) {
  des::RandomEngine rng{22};
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.uniform(0, 10));
  const Ecdf e{xs};
  for (double p = 0.05; p < 1.0; p += 0.05) {
    EXPECT_GE(e.eval(e.quantile(p)), p - 1e-12);
  }
}

TEST(EcdfTest, CurveSpansRange) {
  const Ecdf e{{1.0, 5.0}};
  const auto curve = e.curve(5);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve.front().first, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 5.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(HistogramTest, BinningAndOutOfRange) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.25);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW((Histogram{1.0, 1.0, 5}), std::invalid_argument);
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
}

TEST(HistogramTest, RenderContainsBars) {
  Histogram h{0.0, 2.0, 2};
  for (int i = 0; i < 5; ++i) h.add(0.5);
  h.add(1.5);
  const std::string render = h.render(10);
  EXPECT_NE(render.find('#'), std::string::npos);
  EXPECT_NE(render.find('\n'), std::string::npos);
}

TEST(KsTest, IdenticalSamplesHaveZeroDistance) {
  const Ecdf a{{1.0, 2.0, 3.0}};
  const Ecdf b{{1.0, 2.0, 3.0}};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.0);
}

TEST(KsTest, DisjointSamplesHaveDistanceOne) {
  const Ecdf a{{1.0, 2.0}};
  const Ecdf b{{10.0, 20.0}};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);
}

TEST(KsTest, SymmetricProperty) {
  des::RandomEngine rng{31};
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(rng.normal(0, 1));
    ys.push_back(rng.normal(0.5, 1));
  }
  const Ecdf a{xs};
  const Ecdf b{ys};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), ks_distance(b, a));
  EXPECT_GT(ks_distance(a, b), 0.05);
}

TEST(KsTest, OneSampleAgainstTrueCdf) {
  des::RandomEngine rng{32};
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.uniform(0, 1));
  const Ecdf e{xs};
  const double d = ks_distance(e, [](double x) { return std::clamp(x, 0.0, 1.0); });
  EXPECT_LT(d, 0.03);  // well within KS acceptance at n = 5000
}

TEST(BimodalFitTest, MeanAndCdf) {
  const BimodalUniform b{0.8, 0.10, 0.13, 0.145, 0.35};
  EXPECT_NEAR(b.mean(), 0.8 * 0.115 + 0.2 * 0.2475, 1e-12);
  EXPECT_DOUBLE_EQ(b.cdf(0.05), 0.0);
  EXPECT_DOUBLE_EQ(b.cdf(0.4), 1.0);
  EXPECT_NEAR(b.cdf(0.13), 0.8, 1e-12);
  EXPECT_NE(b.to_string().find("U[0.100,0.130]"), std::string::npos);
}

TEST(BimodalFitTest, RecoversGroundTruthMixture) {
  // Draw from a known two-uniform mixture and check the fit finds it.
  des::RandomEngine rng{33};
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) {
    xs.push_back(rng.bernoulli(0.8) ? rng.uniform(0.10, 0.13) : rng.uniform(0.145, 0.35));
  }
  const BimodalUniform fit = fit_bimodal_uniform(xs);
  EXPECT_NEAR(fit.p1, 0.8, 0.05);
  EXPECT_NEAR(fit.a1, 0.10, 0.01);
  EXPECT_NEAR(fit.b1, 0.13, 0.01);
  EXPECT_NEAR(fit.a2, 0.145, 0.01);
  EXPECT_NEAR(fit.b2, 0.35, 0.02);
}

TEST(BimodalFitTest, FitCdfTracksEmpirical) {
  des::RandomEngine rng{34};
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) {
    xs.push_back(rng.bernoulli(0.6) ? rng.uniform(1.0, 2.0) : rng.uniform(5.0, 9.0));
  }
  const BimodalUniform fit = fit_bimodal_uniform(xs);
  const Ecdf e{xs};
  const double d = ks_distance(e, [&fit](double x) { return fit.cdf(x); });
  EXPECT_LT(d, 0.05);
}

TEST(BimodalFitTest, RejectsTinySamples) {
  EXPECT_THROW((void)fit_bimodal_uniform({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(BimodalFitTest, UnimodalDataStillProducesValidMixture) {
  des::RandomEngine rng{35};
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform(3.0, 4.0));
  const BimodalUniform fit = fit_bimodal_uniform(xs);
  EXPECT_GE(fit.a1, 3.0);
  EXPECT_LE(fit.b2, 4.0);
  EXPECT_GT(fit.p1, 0.0);
  EXPECT_LT(fit.p1, 1.0);
  EXPECT_NEAR(fit.mean(), 3.5, 0.05);
}

}  // namespace
}  // namespace sanperf::stats
