// Tests for the topology subsystem (src/topo) and everything stacked on
// it: route-table compilation, JSON round-trip bit-exactness, the
// degeneracy contract (a single-rack topology reproduces the hub path bit
// for bit), domain-event lowering against the failure-domain tree, the
// Weibull plan synthesizer's determinism, and 1-vs-4-thread CSV equality
// of the two topology scenarios.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>

#include "core/campaign.hpp"
#include "core/workload.hpp"
#include "faults/lowering.hpp"
#include "faults/plan.hpp"
#include "faults/synth.hpp"
#include "topo/topology.hpp"

namespace {

using namespace sanperf;
using topo::LinkParams;
using topo::Rack;
using topo::RouteTable;
using topo::Topology;

// --------------------------------------------------------------------------
// Topology construction & the failure-domain tree
// --------------------------------------------------------------------------

TEST(TopologyTest, UniformSplitsContiguouslyWithRemainderFirst) {
  const Topology t = Topology::uniform(5, 2);
  ASSERT_EQ(t.racks().size(), 2u);
  EXPECT_EQ(t.racks()[0].hosts, (std::vector<topo::HostId>{0, 1, 2}));
  EXPECT_EQ(t.racks()[1].hosts, (std::vector<topo::HostId>{3, 4}));
  EXPECT_EQ(t.n_hosts(), 5u);
  EXPECT_FALSE(t.single_hub_equivalent());
  EXPECT_EQ(t.rack_of(0), 0u);
  EXPECT_EQ(t.rack_of(2), 0u);
  EXPECT_EQ(t.rack_of(3), 1u);
  EXPECT_EQ(t.hosts_in_rack(1), (std::vector<topo::HostId>{3, 4}));
}

TEST(TopologyTest, SingleHubIsDegenerate) {
  const Topology t = Topology::single_hub(4);
  EXPECT_TRUE(t.single_hub_equivalent());
  ASSERT_EQ(t.racks().size(), 1u);
  EXPECT_EQ(t.racks()[0].hosts.size(), 4u);
}

TEST(TopologyTest, ValidationRejectsBadHostSets) {
  // Host 1 appears twice, host 2 never.
  EXPECT_THROW((Topology{"dup", {Rack{{0, 1}, {}, {}}, Rack{{1}, {}, {}}}}),
               std::invalid_argument);
  // Hosts must be exactly 0..n-1 (a gap means some host is unroutable).
  EXPECT_THROW((Topology{"gap", {Rack{{0, 2}, {}, {}}}}), std::invalid_argument);
  EXPECT_THROW((Topology{"empty-rack", {Rack{{0, 1}, {}, {}}, Rack{{}, {}, {}}}}),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// Route-table compilation
// --------------------------------------------------------------------------

TEST(RouteTableTest, SameRackRoutesTakeTwoAccessHops) {
  const RouteTable routes{Topology::uniform(5, 2)};
  // Links: access edges 0..4 (one per host), then uplinks 5 (rack 0) and
  // 6 (rack 1).
  EXPECT_EQ(routes.link_count(), 7u);
  const auto& r = routes.route(0, 2);
  ASSERT_EQ(r.hops, 2u);
  EXPECT_EQ(r.links[0], 0u);
  EXPECT_EQ(r.links[1], 2u);
  EXPECT_FALSE(routes.crosses_racks(0, 2));
}

TEST(RouteTableTest, CrossRackRoutesClimbBothUplinks) {
  const RouteTable routes{Topology::uniform(5, 2)};
  const auto& r = routes.route(1, 4);
  ASSERT_EQ(r.hops, 4u);
  EXPECT_EQ(r.links[0], 1u);  // src access
  EXPECT_EQ(r.links[1], 5u);  // rack 0 uplink
  EXPECT_EQ(r.links[2], 6u);  // rack 1 uplink
  EXPECT_EQ(r.links[3], 4u);  // dst access
  EXPECT_TRUE(routes.crosses_racks(1, 4));
  // And the reverse direction mirrors it.
  const auto& back = routes.route(4, 1);
  ASSERT_EQ(back.hops, 4u);
  EXPECT_EQ(back.links[0], 4u);
  EXPECT_EQ(back.links[1], 6u);
  EXPECT_EQ(back.links[2], 5u);
  EXPECT_EQ(back.links[3], 1u);
}

TEST(RouteTableTest, LinksCarryTheirEdgeParamsAndNames) {
  LinkParams access;
  access.latency_ms = 0.01;
  LinkParams uplink;
  uplink.latency_ms = 0.5;
  uplink.service_scale = 0.25;
  uplink.queue_limit = 8;
  const RouteTable routes{Topology::uniform(4, 2, access, uplink)};
  EXPECT_EQ(routes.link(3).type, RouteTable::LinkType::kAccess);
  EXPECT_EQ(routes.link(3).owner, 3u);
  EXPECT_EQ(routes.link(3).params, access);
  EXPECT_EQ(routes.link(5).type, RouteTable::LinkType::kUplink);
  EXPECT_EQ(routes.link(5).owner, 1u);
  EXPECT_EQ(routes.link(5).params, uplink);
  EXPECT_EQ(routes.link_name(3), "access:3");
  EXPECT_EQ(routes.link_name(5), "uplink:1");
}

// --------------------------------------------------------------------------
// JSON round-trip
// --------------------------------------------------------------------------

TEST(TopologyJsonTest, RoundTripsBitForBit) {
  LinkParams uplink;
  uplink.latency_ms = 0.123456789012345;  // exercises %.17g fidelity
  uplink.service_scale = 0.5;
  uplink.queue_limit = 32;
  const Topology t = Topology::uniform(5, 2, LinkParams{}, uplink);
  const std::string json = t.to_json();
  const Topology back = Topology::from_json(json);
  EXPECT_EQ(back, t);
  EXPECT_EQ(back.to_json(), json);  // canonical form: stable under re-parse
}

TEST(TopologyJsonTest, SingleHubRoundTrips) {
  const Topology t = Topology::single_hub(3);
  EXPECT_EQ(Topology::from_json(t.to_json()), t);
}

// --------------------------------------------------------------------------
// Degeneracy contract: single-rack topology == no topology, bit for bit
// --------------------------------------------------------------------------

core::WorkloadResult run_quick_stream(std::shared_ptr<const Topology> topology) {
  core::WorkloadConfig cfg;
  cfg.n = 5;
  cfg.network = net::NetworkParams::defaults();
  cfg.timers = net::TimerModel::ideal();
  cfg.topology = std::move(topology);
  cfg.seed = 20020612;
  core::WorkloadSpec stream;
  stream.arrivals = core::ArrivalProcess::kOpenLoop;
  stream.offered_per_s = 400;
  stream.warmup = 10;
  stream.measured = 60;
  return core::run_workload(cfg, stream);
}

TEST(TopologyDegeneracyTest, SingleHubTopologyMatchesNullTopologyBitForBit) {
  const auto base = run_quick_stream(nullptr);
  const auto degenerate = run_quick_stream(std::make_shared<const Topology>(Topology::single_hub(5)));
  ASSERT_EQ(degenerate.instances.size(), base.instances.size());
  for (std::size_t i = 0; i < base.instances.size(); ++i) {
    ASSERT_EQ(degenerate.instances[i].latency_ms.has_value(),
              base.instances[i].latency_ms.has_value());
    if (base.instances[i].latency_ms) {
      EXPECT_EQ(*degenerate.instances[i].latency_ms, *base.instances[i].latency_ms);
    }
    EXPECT_EQ(degenerate.instances[i].start_ms, base.instances[i].start_ms);
  }
  EXPECT_EQ(degenerate.stats.mean_latency_ms, base.stats.mean_latency_ms);
  EXPECT_EQ(degenerate.stats.p95_latency_ms, base.stats.p95_latency_ms);
  EXPECT_EQ(degenerate.stats.delivered_per_s, base.stats.delivered_per_s);
  EXPECT_EQ(degenerate.stats.decided, base.stats.decided);
  EXPECT_EQ(degenerate.stats.undecided, base.stats.undecided);
}

TEST(TopologyDegeneracyTest, MultiRackTopologyDiverges) {
  // The inverse control: a genuinely routed 2-rack topology must NOT
  // reproduce the hub trajectory (otherwise the routed path is dead code).
  LinkParams uplink;
  uplink.latency_ms = 0.5;
  const auto base = run_quick_stream(nullptr);
  const auto routed =
      run_quick_stream(std::make_shared<const Topology>(Topology::uniform(5, 2, {}, uplink)));
  EXPECT_NE(routed.stats.mean_latency_ms, base.stats.mean_latency_ms);
}

// --------------------------------------------------------------------------
// Domain-event lowering against the failure-domain tree
// --------------------------------------------------------------------------

TEST(LoweringTest, KillRackExpandsToPerHostCrashes) {
  const auto plan = faults::FaultPlan{}.add(faults::FaultPlan::kill_rack(1, 100.0, 50.0));
  const auto lowered = faults::lower_plan(plan, Topology::uniform(5, 2));
  ASSERT_EQ(lowered.events().size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(lowered.events()[i].kind, faults::FaultKind::kCrash);
    EXPECT_EQ(lowered.events()[i].at_ms, 100.0);
    EXPECT_EQ(lowered.events()[i].duration_ms, 50.0);
    EXPECT_EQ(lowered.events()[i].domain, -1);
  }
  EXPECT_EQ(lowered.events()[0].host, 3);
  EXPECT_EQ(lowered.events()[1].host, 4);
  lowered.validate(5);  // per-host form passes host-count validation
}

TEST(LoweringTest, PartitionSwitchBecomesRackGroupPartition) {
  const auto plan =
      faults::FaultPlan{}.add(faults::FaultPlan::partition_switch(0, 20.0, 30.0));
  const auto lowered = faults::lower_plan(plan, Topology::uniform(5, 2));
  ASSERT_EQ(lowered.events().size(), 1u);
  const auto& e = lowered.events()[0];
  EXPECT_EQ(e.kind, faults::FaultKind::kPartition);
  EXPECT_EQ(e.group, (std::vector<faults::HostId>{0, 1, 2}));
  EXPECT_EQ(e.at_ms, 20.0);
  EXPECT_EQ(e.duration_ms, 30.0);
}

TEST(LoweringTest, DomainLossScopesToRackGroup) {
  const auto plan =
      faults::FaultPlan{}.add(faults::FaultPlan::domain_loss(1, 10.0, 40.0, 0.25));
  const auto lowered = faults::lower_plan(plan, Topology::uniform(5, 2));
  ASSERT_EQ(lowered.events().size(), 1u);
  const auto& e = lowered.events()[0];
  EXPECT_EQ(e.kind, faults::FaultKind::kLoss);
  EXPECT_EQ(e.group, (std::vector<faults::HostId>{3, 4}));
  EXPECT_EQ(e.loss_p, 0.25);
}

TEST(LoweringTest, OutOfRangeRackThrows) {
  const auto plan = faults::FaultPlan{}.add(faults::FaultPlan::kill_rack(2, 100.0, 50.0));
  EXPECT_THROW((void)faults::lower_plan(plan, Topology::uniform(5, 2)),
               std::invalid_argument);
}

TEST(LoweringTest, HostScopedPlansPassThroughUnchanged) {
  const auto plan = faults::FaultPlan{}
                        .add(faults::FaultPlan::crash_recover(0, 50.0, 20.0))
                        .add(faults::FaultPlan::loss(10.0, 40.0, 0.1));
  EXPECT_FALSE(plan.has_domain_events());
  const auto lowered = faults::lower_plan(plan, Topology::uniform(5, 2));
  EXPECT_EQ(lowered.to_json(), plan.to_json());
}

TEST(LoweringTest, DomainEventsRoundTripThroughJson) {
  const auto plan = faults::FaultPlan{}
                        .add(faults::FaultPlan::kill_rack(1, 100.0, 50.0))
                        .add(faults::FaultPlan::partition_switch(0, 200.0, 25.0))
                        .add(faults::FaultPlan::domain_loss(1, 300.0, 50.0, 0.2, 0.05));
  const std::string json = plan.to_json();
  EXPECT_EQ(faults::FaultPlan::from_json(json).to_json(), json);
}

// --------------------------------------------------------------------------
// Weibull plan synthesis
// --------------------------------------------------------------------------

faults::WeibullPlanSpec rack_spec() {
  faults::WeibullPlanSpec spec;
  spec.shape = 1.5;
  spec.scale_ms = 300;
  spec.horizon_ms = 900;
  spec.downtime_ms = 50;
  spec.scope = "rack";
  spec.domains = 2;
  spec.seed = 13;
  return spec;
}

TEST(WeibullSynthTest, SameSpecReplaysBitForBit) {
  const auto a = faults::synthesize_weibull_plan(rack_spec());
  const auto b = faults::synthesize_weibull_plan(rack_spec());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_FALSE(a.empty());
}

TEST(WeibullSynthTest, SeedChangesThePlan) {
  auto other = rack_spec();
  other.seed = 14;
  EXPECT_NE(faults::synthesize_weibull_plan(rack_spec()).to_json(),
            faults::synthesize_weibull_plan(other).to_json());
}

TEST(WeibullSynthTest, RackScopeEmitsOrderedKillRackEvents) {
  const auto plan = faults::synthesize_weibull_plan(rack_spec());
  double prev = 0;
  for (const auto& e : plan.events()) {
    EXPECT_EQ(e.kind, faults::FaultKind::kKillRack);
    EXPECT_GE(e.domain, 0);
    EXPECT_LT(e.domain, 2);
    EXPECT_GT(e.at_ms, 0.0);
    EXPECT_LT(e.at_ms, 900.0);
    EXPECT_EQ(e.duration_ms, 50.0);
    EXPECT_GE(e.at_ms, prev);  // sorted by time
    prev = e.at_ms;
  }
}

TEST(WeibullSynthTest, HostScopePermanentCrashStopsEachDomain) {
  faults::WeibullPlanSpec spec;
  spec.shape = 1.0;
  spec.scale_ms = 100;
  spec.horizon_ms = 10000;  // long horizon: only permanence bounds the count
  spec.scope = "host";
  spec.domains = 3;
  spec.seed = 5;
  const auto plan = faults::synthesize_weibull_plan(spec);
  // Permanent downtime: at most one crash per host, each a plain kCrash.
  EXPECT_LE(plan.events().size(), 3u);
  for (const auto& e : plan.events()) {
    EXPECT_EQ(e.kind, faults::FaultKind::kCrash);
    EXPECT_TRUE(e.permanent());
    EXPECT_GE(e.host, 0);
    EXPECT_LT(e.host, 3);
  }
}

TEST(WeibullSynthTest, SpecRoundTripsThroughJson) {
  const auto spec = rack_spec();
  const auto back = faults::WeibullPlanSpec::from_json(spec.to_json());
  EXPECT_EQ(back, spec);
  EXPECT_EQ(back.to_json(), spec.to_json());
  // And the replay contract composes: the re-parsed spec synthesizes the
  // same plan bit for bit.
  EXPECT_EQ(faults::synthesize_weibull_plan(back).to_json(),
            faults::synthesize_weibull_plan(spec).to_json());
}

TEST(WeibullSynthTest, InvalidSpecsThrow) {
  auto spec = rack_spec();
  spec.shape = 0;
  EXPECT_THROW((void)faults::synthesize_weibull_plan(spec), std::invalid_argument);
  spec = rack_spec();
  spec.scope = "datacenter";
  EXPECT_THROW((void)faults::synthesize_weibull_plan(spec), std::invalid_argument);
  spec = rack_spec();
  spec.domains = 0;
  EXPECT_THROW((void)faults::synthesize_weibull_plan(spec), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Registered topology scenarios: thread-count invariance
// --------------------------------------------------------------------------

std::string run_scenario_csv(const std::string& name, std::size_t threads,
                             const std::map<std::string, std::string>& overrides) {
  const auto& registry = core::CampaignRegistry::global();
  core::ReplicationRunner runner{threads};
  core::RunOptions options;
  options.scale = core::Scale::quick();
  options.runner = &runner;
  options.axis_overrides = overrides;
  const auto table = registry.run(name, options);
  std::ostringstream csv;
  table.write_csv(csv);
  return csv.str();
}

TEST(TopologyScenarioTest, RackLossConsensusThreadCountInvariant) {
  const std::map<std::string, std::string> overrides{{"instances", "60"}, {"warmup", "10"}};
  EXPECT_EQ(run_scenario_csv("rack_loss_consensus", 1, overrides),
            run_scenario_csv("rack_loss_consensus", 4, overrides));
}

TEST(TopologyScenarioTest, CrossRackLatencySweepThreadCountInvariant) {
  const std::map<std::string, std::string> overrides{
      {"uplink_ms", "0,0.5"}, {"instances", "60"}, {"warmup", "10"}};
  EXPECT_EQ(run_scenario_csv("cross_rack_latency_sweep", 1, overrides),
            run_scenario_csv("cross_rack_latency_sweep", 4, overrides));
}

}  // namespace
