// Tests for the steady-state workload engine (core/workload.hpp): one-shot
// vs legacy-harness bit-identicality, warm-up truncation / batch-means
// folds, arrival processes, decided-instance garbage collection, and
// 1-vs-4-thread determinism of the three registered load scenarios.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "consensus/ct_consensus.hpp"
#include "consensus/sequencer.hpp"
#include "core/campaign.hpp"
#include "core/extensions.hpp"
#include "core/measurement.hpp"
#include "core/workload.hpp"
#include "fd/heartbeat_fd.hpp"
#include "runtime/cluster.hpp"

namespace {

using namespace sanperf;

// --------------------------------------------------------------------------
// One-shot mode == legacy harness
// --------------------------------------------------------------------------

TEST(OneShotTest, MatchesLegacyHarnessBitForBit) {
  const auto params = net::NetworkParams::defaults();
  const auto timers = net::TimerModel::ideal();
  for (const int crashed : {-1, 0, 1}) {
    for (std::uint64_t seed : {7ull, 91ull, 20020612ull}) {
      core::WorkloadConfig cfg;
      cfg.n = 5;
      cfg.network = params;
      cfg.timers = timers;
      cfg.initially_crashed = crashed;
      const auto engine = core::run_one_shot(cfg, 3, seed);
      const auto legacy = core::run_latency_execution(5, params, timers, crashed, 3, seed);
      ASSERT_EQ(engine.latency_ms.has_value(), legacy.latency_ms.has_value());
      if (engine.latency_ms) {
        EXPECT_EQ(*engine.latency_ms, *legacy.latency_ms);  // bit-identical
        EXPECT_EQ(engine.rounds, legacy.rounds);
      }
    }
  }
}

TEST(OneShotTest, AlgorithmDispatchMatchesComparativeWrapper) {
  const auto params = net::NetworkParams::defaults();
  const auto timers = net::TimerModel::ideal();
  core::WorkloadConfig cfg;
  cfg.n = 3;
  cfg.network = params;
  cfg.timers = timers;
  cfg.algorithm = core::Algorithm::kMostefaouiRaynal;
  const auto engine = core::run_one_shot(cfg, 0, 55);
  const auto wrapper = core::run_latency_execution_with(core::Algorithm::kMostefaouiRaynal, 3,
                                                        params, timers, -1, 0, 55);
  ASSERT_TRUE(engine.latency_ms && wrapper.latency_ms);
  EXPECT_EQ(*engine.latency_ms, *wrapper.latency_ms);
}

// --------------------------------------------------------------------------
// Statistics fold: warm-up truncation and batch means
// --------------------------------------------------------------------------

core::InstanceRecord record(std::int32_t cid, double start_ms, double latency_ms) {
  core::InstanceRecord rec;
  rec.cid = cid;
  rec.start_ms = start_ms;
  if (latency_ms >= 0) rec.latency_ms = latency_ms;
  return rec;
}

TEST(WorkloadStatsTest, WarmupInstancesAreTruncated) {
  // 2 warm-up instances with huge latencies must not touch the statistics.
  std::vector<core::InstanceRecord> recs;
  recs.push_back(record(0, 0.0, 500.0));
  recs.push_back(record(1, 1.0, 900.0));
  for (int k = 0; k < 8; ++k) {
    recs.push_back(record(2 + k, 2.0 + k, 1.0));
  }
  const auto stats = core::fold_workload_stats(recs, 2, 4);
  EXPECT_EQ(stats.decided, 8u);
  EXPECT_EQ(stats.undecided, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_latency_ms, 1.0);
  EXPECT_DOUBLE_EQ(stats.latency_ci.mean, 1.0);
  // Measured window: starts at the first measured instance (t = 2), ends
  // at the last decision (t = 9 + 1).
  EXPECT_DOUBLE_EQ(stats.duration_ms, 8.0);
  EXPECT_DOUBLE_EQ(stats.delivered_per_s, 1000.0);
  // Realised arrival rate: 7 gaps over 7 ms.
  EXPECT_DOUBLE_EQ(stats.offered_per_s, 1000.0);
}

TEST(WorkloadStatsTest, BatchMeansMatchManualBatching) {
  // 8 measured instances, 4 batches of 2: batch means 1.5, 3.5, 5.5, 7.5.
  std::vector<core::InstanceRecord> recs;
  for (int k = 0; k < 8; ++k) {
    recs.push_back(record(k, static_cast<double>(k), 1.0 + k));
  }
  const auto stats = core::fold_workload_stats(recs, 0, 4);
  EXPECT_DOUBLE_EQ(stats.latency_ci.mean, 4.5);
  EXPECT_EQ(stats.latency_ci.count, 4u);  // four completed batches
  EXPECT_GT(stats.latency_ci.half_width, 0.0);
}

TEST(WorkloadStatsTest, UndecidedAreCountedNotAveraged) {
  std::vector<core::InstanceRecord> recs;
  recs.push_back(record(0, 0.0, 2.0));
  recs.push_back(record(1, 1.0, -1));  // undecided
  recs.push_back(record(2, 2.0, 4.0));
  const auto stats = core::fold_workload_stats(recs, 0, 1);
  EXPECT_EQ(stats.decided, 2u);
  EXPECT_EQ(stats.undecided, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_latency_ms, 3.0);
}

TEST(WorkloadStatsTest, FallsBackToSummaryCiBelowOneBatch) {
  // Batch size 5, only 3 decided: no completed batch, the CI must fall
  // back to the plain summary instead of reporting mean 0.
  std::vector<core::InstanceRecord> recs;
  for (int k = 0; k < 10; ++k) {
    recs.push_back(record(k, static_cast<double>(k), k < 3 ? 2.0 : -1));
  }
  const auto stats = core::fold_workload_stats(recs, 0, 2);
  EXPECT_DOUBLE_EQ(stats.latency_ci.mean, 2.0);
  EXPECT_EQ(stats.undecided, 7u);
}

TEST(WorkloadStatsTest, SplitByWindowBucketsLikeFaultFold) {
  core::WorkloadResult result;
  result.warmup = 1;
  result.instances.push_back(record(0, 0.0, 1.0));    // warm-up: excluded
  result.instances.push_back(record(1, 10.0, 1.0));   // decided before window
  result.instances.push_back(record(2, 48.0, 10.0));  // in flight when it opened
  result.instances.push_back(record(3, 60.0, 2.0));   // started inside
  result.instances.push_back(record(4, 90.0, 1.0));   // after the window end
  const auto phases = core::split_workload_by_window(result, 50.0, 80.0);
  EXPECT_EQ(phases.before.latencies_ms.size(), 1u);
  EXPECT_EQ(phases.during.latencies_ms.size(), 2u);
  EXPECT_EQ(phases.after.latencies_ms.size(), 1u);
}

// --------------------------------------------------------------------------
// Stream behaviour
// --------------------------------------------------------------------------

core::WorkloadConfig base_config(std::size_t n, std::uint64_t seed) {
  core::WorkloadConfig cfg;
  cfg.n = n;
  cfg.network = net::NetworkParams::defaults();
  cfg.timers = net::TimerModel::ideal();
  cfg.seed = seed;
  return cfg;
}

TEST(WorkloadEngineTest, StreamsAreDeterministic) {
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kOpenLoop;
  spec.offered_per_s = 400;
  spec.warmup = 5;
  spec.measured = 60;
  const auto a = core::run_workload(base_config(3, 42), spec);
  const auto b = core::run_workload(base_config(3, 42), spec);
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (std::size_t k = 0; k < a.instances.size(); ++k) {
    EXPECT_EQ(a.instances[k].start_ms, b.instances[k].start_ms);
    ASSERT_EQ(a.instances[k].decided(), b.instances[k].decided());
    if (a.instances[k].decided()) {
      EXPECT_EQ(*a.instances[k].latency_ms, *b.instances[k].latency_ms);
    }
  }
}

TEST(WorkloadEngineTest, OpenLoopRealisesTheOfferedLoad) {
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kOpenLoop;
  spec.offered_per_s = 300;
  spec.warmup = 10;
  spec.measured = 150;
  const auto res = core::run_workload(base_config(3, 7), spec);
  EXPECT_EQ(res.stats.decided + res.stats.undecided, 150u);
  // The realised Poisson rate fluctuates; 25% slack is generous and stable
  // for the fixed seed.
  EXPECT_NEAR(res.stats.offered_per_s, 300.0, 75.0);
  EXPECT_GT(res.stats.delivered_per_s, 0.0);
}

TEST(WorkloadEngineTest, BurstSeparationKeepsInstancesIsolated) {
  // A 10 ms separation reproduces sequencer-style isolation: latency must
  // sit at the isolated baseline, far from the back-to-back regime.
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kBurst;
  spec.separation_ms = 10.0;
  spec.warmup = 0;
  spec.measured = 50;
  const auto stream = core::run_workload(base_config(3, 11), spec);
  const auto isolated = core::measure_latency(3, net::NetworkParams::defaults(),
                                              net::TimerModel::ideal(), -1, 50, 11);
  EXPECT_EQ(stream.stats.undecided, 0u);
  EXPECT_NEAR(stream.stats.mean_latency_ms, isolated.summary().mean(), 0.2);
}

TEST(WorkloadEngineTest, ClosedLoopLaunchesExactlyMeasuredInstances) {
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kClosedLoop;
  spec.clients = 4;
  spec.warmup = 8;
  spec.measured = 100;
  const auto res = core::run_workload(base_config(3, 5), spec);
  EXPECT_EQ(res.instances.size(), 108u);
  EXPECT_EQ(res.stats.decided, 100u);
  EXPECT_EQ(res.stats.undecided, 0u);
  // Instances launch in cid order.
  for (std::size_t k = 1; k < res.instances.size(); ++k) {
    EXPECT_GE(res.instances[k].start_ms, res.instances[k - 1].start_ms);
  }
}

TEST(WorkloadEngineTest, MoreClientsDeliverMoreThanOneUpToSaturation) {
  core::WorkloadSpec one;
  one.arrivals = core::ArrivalProcess::kClosedLoop;
  one.clients = 1;
  one.warmup = 5;
  one.measured = 80;
  auto four = one;
  four.clients = 4;
  const auto r1 = core::run_workload(base_config(5, 9), one);
  const auto r4 = core::run_workload(base_config(5, 9), four);
  // Four clients raise per-instance latency (contention)...
  EXPECT_GT(r4.stats.mean_latency_ms, r1.stats.mean_latency_ms);
  // ...while delivered throughput stays within the [1x, 4x] envelope.
  EXPECT_LT(r4.stats.delivered_per_s, 4.0 * r1.stats.delivered_per_s);
}

// --------------------------------------------------------------------------
// Batching & pipelining
// --------------------------------------------------------------------------

void expect_same_stream(const core::WorkloadResult& a, const core::WorkloadResult& b) {
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (std::size_t k = 0; k < a.instances.size(); ++k) {
    EXPECT_EQ(a.instances[k].start_ms, b.instances[k].start_ms);
    ASSERT_EQ(a.instances[k].decided(), b.instances[k].decided());
    if (a.instances[k].decided()) {
      EXPECT_EQ(*a.instances[k].latency_ms, *b.instances[k].latency_ms);  // bit-identical
      EXPECT_EQ(a.instances[k].rounds, b.instances[k].rounds);
    }
  }
}

TEST(BatchedWorkloadTest, UnbatchedSpecIgnoresTheLingerKnob) {
  // batch_size = 1 closes synchronously inside submit; the linger deadline
  // must never arm, so its value cannot perturb the stream.
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kOpenLoop;
  spec.offered_per_s = 400;
  spec.warmup = 5;
  spec.measured = 80;
  auto lingering = spec;
  lingering.batch_linger_ms = 50.0;
  const auto plain = core::run_workload(base_config(3, 33), spec);
  const auto with_linger = core::run_workload(base_config(3, 33), lingering);
  expect_same_stream(plain, with_linger);
}

TEST(BatchedWorkloadTest, UnlimitedWindowEqualsAVeryLargeOne) {
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kOpenLoop;
  spec.offered_per_s = 600;
  spec.warmup = 5;
  spec.measured = 80;
  auto huge = spec;
  huge.pipeline_window = 1u << 20;
  const auto unlimited = core::run_workload(base_config(3, 34), spec);
  const auto windowed = core::run_workload(base_config(3, 34), huge);
  expect_same_stream(unlimited, windowed);
}

TEST(BatchedWorkloadTest, UnbatchedValueViewMirrorsTheInstanceView) {
  // With one value per instance and no window, the per-value records are
  // the per-instance records: zero queueing, equal latencies, equal folds.
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kOpenLoop;
  spec.offered_per_s = 300;
  spec.warmup = 10;
  spec.measured = 80;
  const auto res = core::run_workload(base_config(3, 35), spec);
  ASSERT_EQ(res.values.size(), res.instances.size());
  EXPECT_EQ(res.warmup_values, res.warmup);
  for (std::size_t k = 0; k < res.values.size(); ++k) {
    const auto& val = res.values[k];
    const auto& inst = res.instances[k];
    EXPECT_EQ(val.cid, inst.cid);
    EXPECT_DOUBLE_EQ(val.queue_ms, 0.0);
    EXPECT_DOUBLE_EQ(val.arrival_ms, inst.start_ms);
    ASSERT_EQ(val.decided(), inst.decided());
    if (val.decided()) EXPECT_EQ(*val.consensus_ms, *inst.latency_ms);
  }
  EXPECT_EQ(res.value_stats.decided, res.stats.decided);
  EXPECT_DOUBLE_EQ(res.value_stats.mean_latency_ms, res.stats.mean_latency_ms);
  EXPECT_DOUBLE_EQ(res.value_stats.p95_latency_ms, res.stats.p95_latency_ms);
  EXPECT_DOUBLE_EQ(res.mean_batch_size, 1.0);
}

TEST(BatchedWorkloadTest, PerValueLatencyDecomposesIntoQueueAndConsensus) {
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kOpenLoop;
  spec.offered_per_s = 1500;
  spec.warmup = 16;
  spec.measured = 160;
  spec.batch_size = 4;
  spec.batch_linger_ms = 8.0;
  const auto res = core::run_workload(base_config(3, 36), spec);
  ASSERT_EQ(res.values.size(), 176u);
  std::map<std::int32_t, std::vector<const core::ValueRecord*>> by_instance;
  for (const auto& val : res.values) {
    ASSERT_GE(val.cid, 0);  // every value was carried by some instance
    ASSERT_GE(val.queue_ms, 0.0);
    by_instance[val.cid].push_back(&val);
    if (!val.decided()) continue;
    // queue + consensus = end-to-end, exactly.
    EXPECT_DOUBLE_EQ(val.total_ms(), val.queue_ms + *val.consensus_ms);
    // The carrying instance launched at arrival + queue and decided after
    // its consensus latency: the value view must agree with the instance.
    const auto& inst = res.instances.at(static_cast<std::size_t>(val.cid));
    EXPECT_DOUBLE_EQ(val.arrival_ms + val.queue_ms, inst.start_ms);
    EXPECT_EQ(*val.consensus_ms, *inst.latency_ms);
  }
  for (const auto& [cid, members] : by_instance) {
    ASSERT_LE(members.size(), 4u);
    for (std::size_t m = 0; m < members.size(); ++m) {
      const auto* val = members[m];
      // Batch-mates share the decision, so they share the consensus time...
      EXPECT_EQ(val->consensus_ms.has_value(), members.front()->consensus_ms.has_value());
      if (val->consensus_ms) EXPECT_EQ(*val->consensus_ms, *members.front()->consensus_ms);
      // ...and vids are assigned at submission, so a batch is consecutive.
      EXPECT_EQ(val->vid, members.front()->vid + static_cast<std::int64_t>(m));
    }
  }
  EXPECT_GT(res.mean_batch_size, 1.5);
  EXPECT_EQ(res.batches_closed_on_size + res.batches_closed_on_linger +
                res.batches_closed_on_flush,
            res.instances.size());
}

TEST(BatchedWorkloadTest, BatchingLiftsDeliveredValueThroughputPastTheKnee) {
  // n = 5 saturates near ~376 unbatched instances/s (PR 5). Offer 2000
  // values/s: batches of 16 need only ~125 inst/s, so the stream delivers
  // the offered rate at a bounded p95 where batch_size = 1 cannot.
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kOpenLoop;
  spec.offered_per_s = 2000;
  spec.warmup = 50;
  spec.measured = 400;
  spec.batch_size = 16;
  spec.batch_linger_ms = 10.0;
  const auto res = core::run_workload(base_config(5, 37), spec);
  EXPECT_EQ(res.value_stats.undecided, 0u);
  EXPECT_GT(res.value_stats.delivered_per_s, 1500.0);  // ~4x the unbatched knee
  EXPECT_LT(res.value_stats.p95_latency_ms, 50.0);
  EXPECT_GT(res.mean_batch_size, 4.0);
}

TEST(BatchedWorkloadTest, ExponentialThinkTimeIsDeterministicAndDistinct) {
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kClosedLoop;
  spec.clients = 2;
  spec.think_ms = 5.0;
  spec.warmup = 5;
  spec.measured = 60;
  auto exp_spec = spec;
  exp_spec.think_dist = core::ThinkTimeDist::kExp;
  const auto fixed = core::run_workload(base_config(3, 38), spec);
  const auto exp_a = core::run_workload(base_config(3, 38), exp_spec);
  const auto exp_b = core::run_workload(base_config(3, 38), exp_spec);
  // Same seed, same distribution: reproducible.
  expect_same_stream(exp_a, exp_b);
  // Exponential gaps genuinely differ from the fixed schedule.
  ASSERT_EQ(fixed.instances.size(), exp_a.instances.size());
  bool any_difference = false;
  for (std::size_t k = 0; k < fixed.instances.size(); ++k) {
    if (fixed.instances[k].start_ms != exp_a.instances[k].start_ms) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
  EXPECT_EQ(exp_a.stats.decided + exp_a.stats.undecided, 60u);
}

TEST(BatchedWorkloadTest, ZeroThinkTimeExpMatchesFixedBitForBit) {
  // think_ms = 0 draws nothing: selecting kExp must not perturb the stream
  // (the scenario default keeps historic behaviour).
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kClosedLoop;
  spec.clients = 3;
  spec.warmup = 5;
  spec.measured = 60;
  auto exp_spec = spec;
  exp_spec.think_dist = core::ThinkTimeDist::kExp;
  expect_same_stream(core::run_workload(base_config(3, 39), spec),
                     core::run_workload(base_config(3, 39), exp_spec));
}

// --------------------------------------------------------------------------
// Instance garbage collection
// --------------------------------------------------------------------------

TEST(WorkloadEngineTest, GcBoundsMemoryIndependentOfStreamLength) {
  core::WorkloadSpec shorter;
  shorter.arrivals = core::ArrivalProcess::kClosedLoop;
  shorter.clients = 4;
  shorter.warmup = 0;
  shorter.measured = 150;
  auto longer = shorter;
  longer.measured = 1200;

  const auto small = core::run_workload(base_config(3, 21), shorter);
  const auto large = core::run_workload(base_config(3, 21), longer);

  // Retained state is bounded by the in-flight window (clients + the
  // deferred-sweep slack), nowhere near the stream length...
  EXPECT_LE(large.peak_active_instances, 16u);
  // ...and an 8x longer stream does not move the high-water mark.
  EXPECT_LE(large.peak_active_instances, small.peak_active_instances + 4);
  // Every process collected (nearly) every instance it decided.
  EXPECT_GE(large.instances_collected, 3u * 1150u);
}

TEST(ConsensusGcTest, WatermarkSurvivesAMissedDecision) {
  // A host that misses a decision outright (crashed while the cluster
  // decided it) must not pin the watermark forever: past the bounded
  // out-of-order window the gap is written off and memory stays flat.
  consensus::detail::InstanceGc gc;
  gc.enable(true);
  std::map<std::int32_t, int> instances;
  const auto decide = [&](std::int32_t cid) {
    instances[cid] = 1;
    gc.mark(cid);
    gc.sweep(instances);
  };
  decide(0);
  // cid 1 never decides locally but still holds live round state.
  instances[1] = 1;
  for (std::int32_t cid = 2; cid < 2000; ++cid) decide(cid);
  EXPECT_LE(gc.out_of_order_size(), consensus::detail::InstanceGc::kMaxOutOfOrder);
  EXPECT_GT(gc.floor(), 1);  // the gap was written off
  EXPECT_TRUE(gc.collected(1500));
  // The write-off also reaps the stranded never-decided entry: nothing
  // below the watermark keeps state.
  EXPECT_TRUE(instances.empty());
}

TEST(ConsensusGcTest, RestartClearedStateStillAdvancesTheWatermark) {
  // mark() then a warm restart clears the instance map before the sweep:
  // the decision must still be noted or the watermark stalls.
  consensus::detail::InstanceGc gc;
  gc.enable(true);
  std::map<std::int32_t, int> instances;
  instances[0] = 1;
  gc.mark(0);
  instances.clear();  // Layer::on_restart
  gc.sweep(instances);
  EXPECT_EQ(gc.floor(), 1);
  EXPECT_TRUE(gc.collected(0));
}

TEST(ConsensusGcTest, CollectedInstancesStayDecidedAndIgnoreStaleTraffic) {
  runtime::ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 17;
  cfg.timers = net::TimerModel::ideal();
  runtime::Cluster cluster{cfg};
  for (runtime::HostId i = 0; i < 3; ++i) {
    auto& proc = cluster.process(i);
    auto& fd_layer = proc.add_layer<fd::StaticFd>();
    auto& cons = proc.add_layer<consensus::CtConsensus>(fd_layer);
    cons.set_gc_decided(true);
  }
  cluster.run_until(des::TimePoint::origin());
  for (runtime::HostId i = 0; i < 3; ++i) {
    cluster.process(i).layer<consensus::CtConsensus>().propose(0, 100 + i);
  }
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(100));
  auto& cons = cluster.process(0).layer<consensus::CtConsensus>();
  // Trigger the deferred sweep with a fresh entry point, then check.
  cluster.process(0).layer<consensus::CtConsensus>().propose(1, 200);
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(200));
  EXPECT_TRUE(cons.has_decided(0));
  EXPECT_GE(cons.instances_collected(), 1u);
  EXPECT_LE(cons.active_instances(), 1u);  // instance 1 may already be swept
  EXPECT_THROW((void)cons.decision(0), std::logic_error);  // state discarded
}

TEST(SequencerGcTest, GcDoesNotChangeSequencedResults) {
  const auto run_once = [](bool gc) {
    runtime::ClusterConfig cfg;
    cfg.n = 3;
    cfg.seed = 77;
    cfg.timers = net::TimerModel::defaults();
    runtime::Cluster cluster{cfg};
    const auto fd_params = fd::HeartbeatFdParams::from_timeout_ms(5.0);
    for (runtime::HostId i = 0; i < 3; ++i) {
      auto& proc = cluster.process(i);
      auto& hb = proc.add_layer<fd::HeartbeatFd>(fd_params);
      proc.add_layer<consensus::CtConsensus>(hb);
    }
    consensus::SequencerConfig seq_cfg;
    seq_cfg.executions = 40;
    seq_cfg.gc_decided = gc;
    consensus::ConsensusSequencer seq{cluster, seq_cfg};
    return seq.run();
  };
  const auto plain = run_once(false);
  const auto gc = run_once(true);
  ASSERT_EQ(plain.size(), gc.size());
  for (std::size_t k = 0; k < plain.size(); ++k) {
    ASSERT_EQ(plain[k].decided(), gc[k].decided());
    if (plain[k].decided()) {
      EXPECT_EQ(plain[k].latency_ms(), gc[k].latency_ms());  // bit-identical
    }
  }
}

// --------------------------------------------------------------------------
// Durable recovery & dynamic membership
// --------------------------------------------------------------------------

TEST(DurableWorkloadTest, FreeDurableLogMatchesVolatileBitForBit) {
  // Durable on with zero append latency and no faults: the log records
  // everything but never touches the event queue or an RNG, so the stream
  // is bit-identical to the volatile engine.
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kOpenLoop;
  spec.offered_per_s = 400;
  spec.warmup = 5;
  spec.measured = 60;
  auto durable_cfg = base_config(3, 42);
  durable_cfg.durable_log = true;
  const auto volatile_run = core::run_workload(base_config(3, 42), spec);
  const auto durable_run = core::run_workload(durable_cfg, spec);
  expect_same_stream(volatile_run, durable_run);
  EXPECT_GT(durable_run.durable_appends, 0u);
  EXPECT_EQ(durable_run.instances_replayed, 0u);  // nobody crashed
  EXPECT_EQ(volatile_run.durable_appends, 0u);
}

TEST(DurableWorkloadTest, ReplayRejoinsInFlightInstancesAfterACrash) {
  // A burst is in flight when host 0 (the pinned round-1 coordinator under
  // a static detector) crashes. Volatile recovery forgets the in-flight
  // instances, so they stall to the give-up deadline; durable replay
  // re-enters them after the warm restart and strictly more decide.
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kBurst;
  spec.separation_ms = 0.0;
  spec.warmup = 0;
  spec.measured = 40;
  spec.instance_timeout_ms = 500.0;
  faults::FaultPlan plan;
  plan.add(faults::FaultPlan::crash_recover(0, 12, 30));
  auto cfg = base_config(3, 42);
  cfg.fault_plan = &plan;
  auto durable_cfg = cfg;
  durable_cfg.durable_log = true;  // append latency 0: same timing, plus replay
  const auto volatile_run = core::run_workload(cfg, spec);
  const auto durable_run = core::run_workload(durable_cfg, spec);
  EXPECT_GT(volatile_run.stats.undecided, 0u);  // the stall is real
  EXPECT_GT(durable_run.instances_replayed, 0u);
  EXPECT_LT(durable_run.stats.undecided, volatile_run.stats.undecided);
  EXPECT_GT(durable_run.stats.decided, volatile_run.stats.decided);
}

TEST(DurableWorkloadTest, RestartStormKeepsTheStreamAliveWithReplay) {
  // Four consecutive crash/recover cycles on one host under saturating
  // load with a bounded pipeline window (kept full, so every crash catches
  // in-flight instances): with the durable log, coordinator rotation, a
  // live detector and value resubmission, every submitted value is still
  // delivered exactly once and the restarts genuinely replay.
  faults::FaultPlan plan;
  for (int i = 0; i < 4; ++i) plan.add(faults::FaultPlan::crash_recover(0, 20 + 40 * i, 20));
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kOpenLoop;
  spec.offered_per_s = 2000;
  spec.warmup = 5;
  spec.measured = 160;
  spec.pipeline_window = 8;
  spec.instance_timeout_ms = 200.0;
  spec.resubmit_undecided = true;
  auto cfg = base_config(3, 43);
  cfg.fault_plan = &plan;
  cfg.heartbeat_timeout_ms = 10.0;
  cfg.rotate_coordinators = true;
  cfg.durable_log = true;
  const auto res = core::run_workload(cfg, spec);
  EXPECT_GT(res.instances_replayed, 0u);  // the storm caught instances in flight
  EXPECT_EQ(res.value_stats.undecided, 0u);
  EXPECT_EQ(res.value_stats.decided + res.value_stats.undecided, 160u);
  for (const auto& val : res.values) {
    ASSERT_GE(val.cid, 0);  // exactly one deciding instance per value
    EXPECT_TRUE(val.decided());
  }
}

TEST(MembershipWorkloadTest, GrowthDeliversEveryValueAcrossEpochs) {
  // 3 -> 4 -> 5 growth decided in-stream: both change instances decide,
  // epochs advance in order, and no value is lost across the switches.
  faults::FaultPlan plan;
  plan.add(faults::FaultPlan::add_host(3, 60));
  plan.add(faults::FaultPlan::add_host(4, 120));
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kOpenLoop;
  spec.offered_per_s = 200;
  spec.warmup = 5;
  spec.measured = 60;
  auto cfg = base_config(5, 44);
  cfg.initial_members = {0, 1, 2};
  cfg.fault_plan = &plan;
  const auto res = core::run_workload(cfg, spec);
  ASSERT_EQ(res.membership_changes.size(), 2u);
  EXPECT_TRUE(res.membership_changes[0].added);
  EXPECT_EQ(res.membership_changes[0].host, 3);
  EXPECT_EQ(res.membership_changes[0].epoch, 1u);
  EXPECT_GE(res.membership_changes[0].at_ms, 60.0);
  EXPECT_EQ(res.membership_changes[1].host, 4);
  EXPECT_EQ(res.membership_changes[1].epoch, 2u);
  EXPECT_GT(res.membership_changes[1].at_ms, res.membership_changes[0].at_ms);
  EXPECT_EQ(res.value_stats.undecided, 0u);
  EXPECT_EQ(res.value_stats.decided, 60u);
}

// --------------------------------------------------------------------------
// Registered scenarios: thread-count invariance
// --------------------------------------------------------------------------

std::string run_scenario_csv(const std::string& name, std::size_t threads,
                             const std::map<std::string, std::string>& overrides) {
  const auto& registry = core::CampaignRegistry::global();
  core::ReplicationRunner runner{threads};
  core::RunOptions options;
  options.scale = core::Scale::quick();
  options.runner = &runner;
  options.axis_overrides = overrides;
  const auto table = registry.run(name, options);
  std::ostringstream csv;
  table.write_csv(csv);
  return csv.str();
}

TEST(WorkloadScenarioTest, LoadLatencySweepThreadCountInvariant) {
  const std::map<std::string, std::string> overrides{
      {"n", "3"}, {"offered_per_s", "300,900"}, {"instances", "60"}, {"warmup", "10"}};
  EXPECT_EQ(run_scenario_csv("load_latency_sweep", 1, overrides),
            run_scenario_csv("load_latency_sweep", 4, overrides));
}

TEST(WorkloadScenarioTest, LoadLatencySweepBatchingAxesThreadCountInvariant) {
  // The new batching/pipelining axes on load_latency_sweep: sweeping them
  // fans out more points, which must not perturb per-point seeds.
  const std::map<std::string, std::string> overrides{
      {"n", "3"},           {"algorithm", "ct"},       {"offered_per_s", "900"},
      {"batch_size", "1,8"}, {"batch_linger_ms", "5"}, {"pipeline_window", "0,4"},
      {"instances", "60"},  {"warmup", "10"}};
  EXPECT_EQ(run_scenario_csv("load_latency_sweep", 1, overrides),
            run_scenario_csv("load_latency_sweep", 4, overrides));
}

TEST(WorkloadScenarioTest, BatchThroughputSweepThreadCountInvariant) {
  const std::map<std::string, std::string> overrides{
      {"batch_size", "1,16"}, {"offered_values_per_s", "1500"},
      {"instances", "150"},   {"warmup", "20"}};
  EXPECT_EQ(run_scenario_csv("batch_throughput_sweep", 1, overrides),
            run_scenario_csv("batch_throughput_sweep", 4, overrides));
}

TEST(WorkloadScenarioTest, BatchThroughputSweepShowsTheAmortisation) {
  // The tentpole's headline: at an offered value rate past the unbatched
  // instance knee, batching recovers the offered rate.
  const auto& registry = core::CampaignRegistry::global();
  core::RunOptions options;
  options.scale = core::Scale::quick();
  options.axis_overrides = {{"batch_size", "1,16"},
                            {"offered_values_per_s", "1500"},
                            {"instances", "200"},
                            {"warmup", "20"}};
  const auto table = registry.run("batch_throughput_sweep", options);
  ASSERT_EQ(table.row_count(), 2u);
  const double unbatched = std::get<double>(table.cell(0, 7));  // values_per_s
  const double batched = std::get<double>(table.cell(1, 7));
  EXPECT_GT(batched, 2.0 * unbatched);
  EXPECT_GT(batched, 1200.0);
}

TEST(WorkloadScenarioTest, ClosedLoopClientsThreadCountInvariant) {
  const std::map<std::string, std::string> overrides{
      {"n", "3"}, {"clients", "1,4"}, {"instances", "60"}, {"warmup", "10"}};
  EXPECT_EQ(run_scenario_csv("closed_loop_clients", 1, overrides),
            run_scenario_csv("closed_loop_clients", 4, overrides));
}

TEST(WorkloadScenarioTest, CrashUnderLoadThreadCountInvariant) {
  const std::map<std::string, std::string> overrides{
      {"n", "3"}, {"downtime_ms", "20,60"}, {"instances", "80"}, {"warmup", "10"}};
  EXPECT_EQ(run_scenario_csv("crash_under_load", 1, overrides),
            run_scenario_csv("crash_under_load", 4, overrides));
}

TEST(WorkloadScenarioTest, RecoveryUnderLoadThreadCountInvariant) {
  const std::map<std::string, std::string> overrides{
      {"n", "3"}, {"instances", "80"}, {"warmup", "10"}};
  EXPECT_EQ(run_scenario_csv("recovery_under_load", 1, overrides),
            run_scenario_csv("recovery_under_load", 4, overrides));
}

TEST(WorkloadScenarioTest, RollingRestartThreadCountInvariant) {
  const std::map<std::string, std::string> overrides{
      {"n", "3"}, {"instances", "60"}, {"warmup", "10"}};
  EXPECT_EQ(run_scenario_csv("rolling_restart", 1, overrides),
            run_scenario_csv("rolling_restart", 4, overrides));
}

TEST(WorkloadScenarioTest, MembershipGrowthThreadCountInvariant) {
  const std::map<std::string, std::string> overrides{{"instances", "60"}, {"warmup", "10"}};
  EXPECT_EQ(run_scenario_csv("membership_growth", 1, overrides),
            run_scenario_csv("membership_growth", 4, overrides));
}

TEST(WorkloadScenarioTest, RollingRestartDeliversEverythingInBothModes) {
  // The availability-envelope liveness gate: under a full rolling restart,
  // resubmission delivers every submitted value exactly once in both modes
  // (at this load replay rarely engages -- the stream is mostly idle at
  // each crash instant -- so only its absence on volatile rows is checked).
  const auto& registry = core::CampaignRegistry::global();
  core::RunOptions options;
  options.scale = core::Scale::quick();
  options.axis_overrides = {{"n", "3"}, {"instances", "60"}, {"warmup", "10"}};
  const auto table = registry.run("rolling_restart", options);
  ASSERT_EQ(table.row_count(), 2u);  // volatile, durable
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    EXPECT_EQ(std::get<std::int64_t>(table.at(r, "undelivered")), 0) << r;
    if (std::get<std::string>(table.at(r, "mode")) == "volatile") {
      EXPECT_EQ(std::get<std::int64_t>(table.at(r, "replayed")), 0) << r;
    }
  }
}

TEST(WorkloadScenarioTest, RestrictedGridReproducesFullGridSubset) {
  // --set restrictions must reproduce the matching rows of the full grid
  // bit for bit (restriction-stable per-point seeds).
  const std::map<std::string, std::string> full{
      {"n", "3"}, {"offered_per_s", "300,900"}, {"instances", "60"}, {"warmup", "10"}};
  const std::map<std::string, std::string> restricted{
      {"n", "3"}, {"offered_per_s", "900"}, {"instances", "60"}, {"warmup", "10"}};
  const std::string full_csv = run_scenario_csv("load_latency_sweep", 2, full);
  const std::string restricted_csv = run_scenario_csv("load_latency_sweep", 2, restricted);
  // Every restricted row (beyond the two header lines) appears verbatim in
  // the full output.
  std::istringstream lines{restricted_csv};
  std::string line;
  std::size_t row = 0;
  while (std::getline(lines, line)) {
    if (++row <= 2 || line.empty()) continue;
    EXPECT_NE(full_csv.find(line), std::string::npos) << line;
  }
}

TEST(WorkloadScenarioTest, CrashUnderLoadShowsTheTransient) {
  const auto& registry = core::CampaignRegistry::global();
  core::RunOptions options;
  options.scale = core::Scale::quick();
  options.axis_overrides = {{"n", "3"}, {"downtime_ms", "20"}};
  const auto table = registry.run("crash_under_load", options);
  ASSERT_EQ(table.row_count(), 1u);
  const auto& before = std::get<stats::MeanCI>(table.cell(0, 3));
  const auto& during = std::get<stats::MeanCI>(table.cell(0, 4));
  const auto& after = std::get<stats::MeanCI>(table.cell(0, 5));
  // The detection delay dominates the short window; the stream returns to
  // the baseline afterwards.
  EXPECT_GT(during.mean, 2.0 * before.mean);
  EXPECT_NEAR(after.mean, before.mean, 0.5 * before.mean);
}

}  // namespace
