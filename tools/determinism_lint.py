#!/usr/bin/env python3
"""Determinism lint for the sanperf simulation core (src/).

The simulator's contract is bit-identical output for a given seed at any
thread count. That dies quietly the moment simulation code reads a wall
clock, pulls entropy from outside the seed plumbing, iterates an
unordered container into a result, or shares RNG state across shard
tasks. This lint bans those constructs in src/ outright; the few
sanctioned sites (the seed plumbing itself, the replication runner) are
allow-listed by path, and anything else needs an explicit waiver comment:

    // det-lint: allow(<rule>) <reason>

on the offending line or the line above it. Run from anywhere:

    python3 tools/determinism_lint.py [--root REPO_ROOT]

Exit status 0 = clean, 1 = findings (one "file:line: [rule] ..." per
line), 2 = usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Each rule: id, human rationale, regex, and path prefixes (relative to
# src/) where the construct is the sanctioned implementation.
RULES = [
    {
        "id": "libc-rand",
        "why": "libc rand/srand is hidden global state outside the seed tree",
        "re": re.compile(r"\b(?:s?rand|rand_r|drand48|lrand48|random)\s*\("),
        "allow_paths": (),
    },
    {
        "id": "random-device",
        "why": "std::random_device draws OS entropy; all randomness must come "
               "from the master seed",
        "re": re.compile(r"std::random_device"),
        "allow_paths": ("des/random.hpp", "des/random.cpp"),
    },
    {
        "id": "raw-engine",
        "why": "raw <random> engines bypass SeedSplitter substreams; use "
               "des::RandomEngine",
        "re": re.compile(r"std::(?:mt19937(?:_64)?|minstd_rand0?|ranlux\d+(?:_48)?|"
                         r"knuth_b|default_random_engine)\b"),
        "allow_paths": ("des/random.hpp", "des/random.cpp"),
    },
    {
        "id": "wall-clock",
        "why": "wall-clock reads leak host time into simulated results",
        "re": re.compile(r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
                         r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
                         r"|\blocaltime(?:_r)?\s*\(|\bgmtime(?:_r)?\s*\("),
        "allow_paths": (),
    },
    {
        "id": "unordered-container",
        "why": "hash-ordered iteration depends on pointer/hash layout; any walk "
               "that touches results is nondeterministic -- use std::map/set, or "
               "waive lookup-only tables",
        "re": re.compile(r"std::unordered_(?:map|set|multimap|multiset)\b"),
        "allow_paths": (),
    },
    {
        "id": "thread-outside-runner",
        "why": "ad-hoc threads bypass the seed-split ReplicationRunner; all "
               "parallelism must fan out through it",
        "re": re.compile(r"std::(?:jthread|thread|async)\b"),
        "allow_paths": ("core/replication.hpp", "core/replication.cpp"),
    },
    {
        "id": "shared-rng",
        "why": "static/thread_local RNG state is shared across shard tasks and "
               "breaks per-task substream isolation",
        "re": re.compile(r"(?:static|thread_local)\s+(?:[\w:]+\s+)*?"
                         r"(?:des::)?Random(?:Engine|Stream)\b"),
        "allow_paths": (),
    },
]

WAIVER = re.compile(r"det-lint:\s*allow\(([\w-]+)\)")
LINE_COMMENT = re.compile(r"//.*$")


def strip_strings(line: str) -> str:
    """Blank out string/char literal contents so 'rand(' in a message is not a hit."""
    out = []
    quote = None
    i = 0
    while i < len(line):
        c = line[i]
        if quote:
            if c == "\\":
                i += 2
                continue
            if c == quote:
                quote = None
                out.append(c)
            i += 1
            continue
        if c in "\"'":
            quote = c
        out.append(c)
        i += 1
    return "".join(out)


def waivers_for(lines: list[str], idx: int) -> set[str]:
    waived = set(WAIVER.findall(lines[idx]))
    if idx > 0:
        waived |= set(WAIVER.findall(lines[idx - 1]))
    return waived


def lint_file(path: pathlib.Path, rel: str) -> list[str]:
    findings = []
    lines = path.read_text(encoding="utf-8").splitlines()
    in_block_comment = False
    for idx, raw in enumerate(lines):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        while start >= 0:
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]
            start = line.find("/*")
        code = strip_strings(LINE_COMMENT.sub("", line))
        if not code.strip():
            continue
        for rule in RULES:
            if any(rel.startswith(p) for p in rule["allow_paths"]):
                continue
            if not rule["re"].search(code):
                continue
            if rule["id"] in waivers_for(lines, idx):
                continue
            findings.append(f"{path}:{idx + 1}: [{rule['id']}] {rule['why']}")
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: the tree this script lives in)")
    args = parser.parse_args()

    src = args.root / "src"
    if not src.is_dir():
        print(f"determinism_lint: no src/ under {args.root}", file=sys.stderr)
        return 2

    findings = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in {".cpp", ".hpp", ".h", ".cc"}:
            continue
        rel = path.relative_to(src).as_posix()
        findings.extend(lint_file(path, rel))

    for finding in findings:
        print(finding)
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"determinism_lint: clean ({sum(1 for _ in src.rglob('*.cpp'))} .cpp, "
          f"{sum(1 for _ in src.rglob('*.hpp'))} .hpp files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
